//! The what-if adoption simulation (Fig 10): enable IPv6 on IPv4-only
//! third-party domains one at a time, in descending span order, and count
//! how many IPv6-partial sites become IPv6-full at each step.

use crate::influence::InfluenceReport;
use serde::Serialize;

/// The cumulative what-if curve.
#[derive(Debug, Clone, Serialize)]
pub struct WhatIfCurve {
    /// `became_full[k]` = sites that are IPv6-full after the top `k+1`
    /// domains (by span) have enabled IPv6.
    pub became_full: Vec<usize>,
    /// Total IPv6-partial sites under consideration.
    pub total_partial: usize,
    /// Number of third-party domains that would need to enable IPv6 for
    /// every partial site to become full (`None` when some sites are held
    /// back by first-party resources, which no third-party enabling fixes).
    pub domains_for_all: Option<usize>,
}

impl WhatIfCurve {
    /// Run the simulation from an influence report. Sites whose IPv4-only
    /// resources include first-party domains only become full when that
    /// first-party domain (also in the ordering) enables IPv6 — matching
    /// the paper, which orders *all* IPv4-only domains by span.
    pub fn compute(influence: &InfluenceReport) -> WhatIfCurve {
        let n_sites = influence.sites.len();
        let n_domains = influence.domains.len();
        // Remaining v4-only domain-dependency count per site.
        let mut remaining = vec![0u32; n_sites];
        // domain -> dependent sites adjacency.
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n_domains];
        for &(s, d) in &influence.edges {
            remaining[s as usize] += 1;
            dependents[d as usize].push(s);
        }

        let mut became_full = Vec::with_capacity(n_domains);
        let mut full = 0usize;
        let mut domains_for_all = None;
        // Domains are already sorted by descending span.
        for (k, deps) in dependents.iter().enumerate() {
            for &s in deps {
                remaining[s as usize] -= 1;
                if remaining[s as usize] == 0 {
                    full += 1;
                }
            }
            became_full.push(full);
            if full == n_sites && domains_for_all.is_none() {
                domains_for_all = Some(k + 1);
            }
        }
        WhatIfCurve {
            became_full,
            total_partial: n_sites,
            domains_for_all,
        }
    }

    /// Fraction of partial sites fixed after the top `k` domains enable.
    pub fn fraction_after(&self, k: usize) -> f64 {
        if self.total_partial == 0 || k == 0 {
            return 0.0;
        }
        let idx = k.min(self.became_full.len()) - 1;
        self.became_full[idx] as f64 / self.total_partial as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influence::InfluenceReport;
    use crawlsim::{crawl_epoch, CrawlConfig};
    use worldgen::{World, WorldConfig};

    fn curve() -> (InfluenceReport, WhatIfCurve) {
        let w = World::generate(&WorldConfig::small());
        let r = crawl_epoch(&w, w.latest_epoch(), &CrawlConfig::default());
        let inf = InfluenceReport::compute(&r, &w.psl);
        let c = WhatIfCurve::compute(&inf);
        (inf, c)
    }

    #[test]
    fn curve_is_monotone_and_complete() {
        let (inf, c) = curve();
        assert_eq!(c.became_full.len(), inf.domains.len());
        for w in c.became_full.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Enabling every domain fixes every site (first-party domains are
        // in the ordering too).
        assert_eq!(*c.became_full.last().unwrap(), c.total_partial);
        assert!(c.domains_for_all.is_some());
    }

    #[test]
    fn long_tail_shape() {
        let (inf, c) = curve();
        // Paper: the top 500 of ~15k domains (≈3.3%) fix >25% of partial
        // sites, but full coverage needs most of the tail. Scale to this
        // crawl: top 3.3% of domains should fix >15%, and reaching 100%
        // should take >60% of the domains.
        let top = ((inf.domains.len() as f64) * 0.033).ceil() as usize;
        let frac_top = c.fraction_after(top);
        // The ordering includes span-1 first-party laggards (the paper's
        // x-axis is third-party only), so the head covers less at small
        // scale; the qualitative long-tail shape is what matters.
        assert!(
            frac_top > 0.04,
            "top {top} domains fixed only {frac_top:.3}"
        );
        let needed = c.domains_for_all.unwrap();
        assert!(
            needed as f64 > 0.6 * inf.domains.len() as f64,
            "full coverage after {needed}/{} — tail too short",
            inf.domains.len()
        );
    }

    #[test]
    fn head_beats_random_order() {
        let (inf, c) = curve();
        // Enabling by descending span must dominate enabling the same number
        // of *median* domains: compare fraction fixed by top-k vs the span
        // sum ratio.
        let k = (inf.domains.len() / 20).max(1);
        let top_spans: usize = inf.domains[..k].iter().map(|d| d.span).sum();
        let total_spans: usize = inf.domains.iter().map(|d| d.span).sum();
        assert!(
            top_spans as f64 / total_spans as f64 > 0.25,
            "top 5% of domains should cover >25% of dependency edges"
        );
        assert!(c.fraction_after(k) > 0.0);
    }
}
