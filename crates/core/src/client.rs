//! Client-side adoption analysis (§3): Table 1, daily-fraction
//! distributions (Fig 1/16), AS-level and domain-level lead/lag
//! (Fig 3/4/17).

use bgpsim::{AsCategory, AsId, Registry, Rib};
use dnssim::Name;
use flowmon::{FlowRecord, Scope};
use iputil::Family;
use serde::Serialize;
use std::collections::HashMap;
use trafficgen::ResidenceDataset;
use webmodel::psl::Psl;

/// Microseconds per day (flowmon convention).
const DAY_US: u64 = 86_400_000_000;
const HOUR_US: u64 = 3_600_000_000;

/// Volume/fraction statistics for one scope (external or internal) of one
/// residence — one half of a Table 1 row.
#[derive(Debug, Clone, Serialize)]
pub struct ScopeStats {
    /// Total traffic volume in GB, rescaled to pre-sampling magnitude.
    pub total_gb: f64,
    /// IPv6 share of bytes (overall).
    pub v6_byte_fraction: f64,
    /// Total flow count in millions, rescaled.
    pub flows_m: f64,
    /// IPv6 share of flows (overall).
    pub v6_flow_fraction: f64,
    /// Mean of the per-day IPv6 byte fraction.
    pub daily_byte_mean: f64,
    /// Standard deviation of the per-day IPv6 byte fraction.
    pub daily_byte_sd: f64,
    /// Mean of the per-day IPv6 flow fraction.
    pub daily_flow_mean: f64,
    /// Standard deviation of the per-day IPv6 flow fraction.
    pub daily_flow_sd: f64,
}

/// Per-day IPv6 fractions for one residence (Fig 1/16 inputs).
#[derive(Debug, Clone, Serialize)]
pub struct DailyFractions {
    /// 0-based day index.
    pub day: u32,
    /// External IPv6 byte fraction (None when no external traffic that day).
    pub ext_bytes: Option<f64>,
    /// External IPv6 flow fraction.
    pub ext_flows: Option<f64>,
    /// Internal IPv6 byte fraction.
    pub int_bytes: Option<f64>,
    /// Internal IPv6 flow fraction.
    pub int_flows: Option<f64>,
}

/// Complete per-residence analysis (a Table 1 row plus the daily series).
#[derive(Debug, Clone, Serialize)]
pub struct ResidenceAnalysis {
    /// Residence letter.
    pub key: char,
    /// External (LAN↔WAN) statistics.
    pub external: ScopeStats,
    /// Internal (LAN↔LAN) statistics.
    pub internal: ScopeStats,
    /// Per-day fractions.
    pub daily: Vec<DailyFractions>,
}

#[derive(Default, Clone, Copy)]
struct Acc {
    bytes_v4: u64,
    bytes_v6: u64,
    flows_v4: u64,
    flows_v6: u64,
}

impl Acc {
    fn add(&mut self, f: &FlowRecord) {
        match f.family() {
            Family::V4 => {
                self.bytes_v4 += f.total_bytes();
                self.flows_v4 += 1;
            }
            Family::V6 => {
                self.bytes_v6 += f.total_bytes();
                self.flows_v6 += 1;
            }
        }
    }

    fn byte_fraction(&self) -> Option<f64> {
        let total = self.bytes_v4 + self.bytes_v6;
        (total > 0).then(|| self.bytes_v6 as f64 / total as f64)
    }

    fn flow_fraction(&self) -> Option<f64> {
        let total = self.flows_v4 + self.flows_v6;
        (total > 0).then(|| self.flows_v6 as f64 / total as f64)
    }
}

/// Analyze one residence dataset into its Table 1 row and daily series.
pub fn analyze_residence(ds: &ResidenceDataset) -> ResidenceAnalysis {
    let days = ds.num_days as usize;
    let mut overall = [Acc::default(), Acc::default()]; // [external, internal]
    let mut per_day = vec![[Acc::default(), Acc::default()]; days];

    for f in &ds.flows {
        let scope_idx = match f.scope {
            Scope::External => 0,
            Scope::Internal => 1,
        };
        overall[scope_idx].add(f);
        let day = ((f.end / DAY_US) as usize).min(days - 1);
        per_day[day][scope_idx].add(f);
    }

    let scope_stats = |idx: usize| {
        let acc = overall[idx];
        let daily_bytes: Vec<f64> = per_day
            .iter()
            .filter_map(|d| d[idx].byte_fraction())
            .collect();
        let daily_flows: Vec<f64> = per_day
            .iter()
            .filter_map(|d| d[idx].flow_fraction())
            .collect();
        ScopeStats {
            total_gb: (acc.bytes_v4 + acc.bytes_v6) as f64 / ds.scale / 1e9,
            v6_byte_fraction: acc.byte_fraction().unwrap_or(0.0),
            flows_m: (acc.flows_v4 + acc.flows_v6) as f64 / ds.scale / 1e6,
            v6_flow_fraction: acc.flow_fraction().unwrap_or(0.0),
            daily_byte_mean: netstats::mean(&daily_bytes).unwrap_or(0.0),
            daily_byte_sd: netstats::sample_std(&daily_bytes).unwrap_or(0.0),
            daily_flow_mean: netstats::mean(&daily_flows).unwrap_or(0.0),
            daily_flow_sd: netstats::sample_std(&daily_flows).unwrap_or(0.0),
        }
    };

    let daily = (0..days)
        .map(|d| DailyFractions {
            day: d as u32,
            ext_bytes: per_day[d][0].byte_fraction(),
            ext_flows: per_day[d][0].flow_fraction(),
            int_bytes: per_day[d][1].byte_fraction(),
            int_flows: per_day[d][1].flow_fraction(),
        })
        .collect();

    ResidenceAnalysis {
        key: ds.profile.key,
        external: scope_stats(0),
        internal: scope_stats(1),
        daily,
    }
}

/// Which metric to build an hourly series over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// IPv6 fraction of bytes.
    Bytes,
    /// IPv6 fraction of flows.
    Flows,
}

/// Hourly IPv6-fraction series for MSTL (Fig 2/13). Hours without traffic
/// carry the last observed value (a measurement gap, not a zero).
pub fn hourly_fraction_series(
    ds: &ResidenceDataset,
    scope: Scope,
    metric: Metric,
    day_range: std::ops::Range<u32>,
) -> Vec<f64> {
    let hours = (day_range.end - day_range.start) as usize * 24;
    let mut acc = vec![Acc::default(); hours];
    for f in ds.flows.iter().filter(|f| f.scope == scope) {
        let day = (f.end / DAY_US) as u32;
        if !day_range.contains(&day) {
            continue;
        }
        let hour = ((f.end - day_range.start as u64 * DAY_US) / HOUR_US) as usize;
        if hour < hours {
            acc[hour].add(f);
        }
    }
    let mut out = Vec::with_capacity(hours);
    let mut last = 0.5;
    for a in acc {
        let v = match metric {
            Metric::Bytes => a.byte_fraction(),
            Metric::Flows => a.flow_fraction(),
        };
        last = v.unwrap_or(last);
        out.push(last);
    }
    out
}

/// Daily IPv6 byte-fraction series (Fig 14/15 input).
pub fn daily_fraction_series(analysis: &ResidenceAnalysis) -> Vec<f64> {
    let mut out = Vec::with_capacity(analysis.daily.len());
    let mut last = 0.5;
    for d in &analysis.daily {
        last = d.ext_bytes.unwrap_or(last);
        out.push(last);
    }
    out
}

/// Per-(AS, residence) IPv6 byte fraction (Fig 3/4 input).
#[derive(Debug, Clone, Serialize)]
pub struct AsFraction {
    /// Origin AS.
    pub asn: u32,
    /// AS name from the registry.
    pub as_name: String,
    /// Functional category.
    pub category: AsCategory,
    /// Residence letter.
    pub residence: char,
    /// IPv6 byte fraction of this AS's traffic at this residence.
    pub fraction: f64,
    /// Total bytes (sampled scale).
    pub bytes: u64,
}

/// Compute per-AS IPv6 byte fractions at each residence, keeping only ASes
/// carrying at least `min_share` of the residence's external bytes
/// (paper: 0.01%).
pub fn as_fractions(
    datasets: &[ResidenceDataset],
    rib: &Rib,
    registry: &Registry,
    min_share: f64,
) -> Vec<AsFraction> {
    let mut out = Vec::new();
    for ds in datasets {
        let mut per_as: HashMap<AsId, Acc> = HashMap::new();
        let mut total_bytes = 0u64;
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            let Some(asn) = rib.origin_of(f.key.dst) else {
                continue;
            };
            per_as.entry(asn).or_default().add(f);
            total_bytes += f.total_bytes();
        }
        for (asn, acc) in per_as {
            let bytes = acc.bytes_v4 + acc.bytes_v6;
            if (bytes as f64) < min_share * total_bytes as f64 {
                continue;
            }
            let info = registry.as_info(asn);
            out.push(AsFraction {
                asn: asn.0,
                as_name: info.map(|i| i.name.clone()).unwrap_or_default(),
                category: info.map(|i| i.category).unwrap_or(AsCategory::Other),
                residence: ds.profile.key,
                fraction: acc.byte_fraction().unwrap_or(0.0),
                bytes,
            });
        }
    }
    out
}

/// Group AS fractions by AS, keeping only ASes observed at `min_residences`
/// or more residences (the paper's 35-AS population uses 3).
pub fn common_ases(
    fractions: &[AsFraction],
    min_residences: usize,
) -> Vec<(u32, String, AsCategory, Vec<f64>)> {
    let mut grouped: HashMap<u32, (String, AsCategory, Vec<f64>)> = HashMap::new();
    for f in fractions {
        let e = grouped
            .entry(f.asn)
            .or_insert_with(|| (f.as_name.clone(), f.category, Vec::new()));
        e.2.push(f.fraction);
    }
    let mut out: Vec<_> = grouped
        .into_iter()
        .filter(|(_, (_, _, v))| v.len() >= min_residences)
        .map(|(asn, (name, cat, v))| (asn, name, cat, v))
        .collect();
    out.sort_by_key(|(asn, ..)| *asn);
    out
}

/// Per-(domain, residence) IPv6 byte fractions via reverse DNS (Fig 17).
/// Only domains observed at `min_residences`+ residences with at least
/// `min_bytes` (sampled scale) total are kept.
pub fn domain_fractions(
    datasets: &[ResidenceDataset],
    zone: &dnssim::ZoneDb,
    psl: &Psl,
    min_bytes: u64,
    min_residences: usize,
) -> Vec<(Name, Vec<f64>)> {
    let mut per_domain: HashMap<Name, HashMap<char, Acc>> = HashMap::new();
    for ds in datasets {
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            let Some(name) = zone.reverse_lookup(f.key.dst) else {
                continue;
            };
            let domain = psl.etld_plus_one(name).unwrap_or_else(|| name.clone());
            per_domain
                .entry(domain)
                .or_default()
                .entry(ds.profile.key)
                .or_default()
                .add(f);
        }
    }
    let mut out: Vec<(Name, Vec<f64>)> = per_domain
        .into_iter()
        .filter_map(|(domain, per_res)| {
            let total: u64 = per_res.values().map(|a| a.bytes_v4 + a.bytes_v6).sum();
            if per_res.len() < min_residences || total < min_bytes {
                return None;
            }
            let fractions: Vec<f64> = per_res.values().filter_map(|a| a.byte_fraction()).collect();
            Some((domain, fractions))
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::{synthesize_all, TrafficConfig};
    use worldgen::{World, WorldConfig};

    fn datasets() -> (World, Vec<ResidenceDataset>) {
        let world = World::generate(&WorldConfig::small());
        let ds = synthesize_all(&world, &TrafficConfig::fast());
        (world, ds)
    }

    #[test]
    fn table1_shape() {
        let (_, ds) = datasets();
        let analyses: Vec<ResidenceAnalysis> = ds.iter().map(analyze_residence).collect();
        assert_eq!(analyses.len(), 5);
        // Measured v6 byte fractions should land near the paper's overall
        // Table 1 values. D/E are volatile by design (rare event days
        // dominate their totals, exactly like the paper's E: 6.6% overall
        // vs 45.9% daily mean), so their bands are wide.
        for (a, d) in analyses.iter().zip(&ds) {
            let paper = d.profile.paper_ext_v6_bytes;
            let tol = if a.key == 'E' || a.key == 'D' {
                0.35
            } else {
                0.15
            };
            assert!(
                (a.external.v6_byte_fraction - paper).abs() < tol,
                "residence {}: measured {:.3} vs paper {paper:.3}",
                a.key,
                a.external.v6_byte_fraction
            );
        }
        // C must be the lowest of the high-volume residences (paper).
        let by_key = |k: char| {
            analyses
                .iter()
                .find(|a| a.key == k)
                .unwrap()
                .external
                .v6_byte_fraction
        };
        assert!(by_key('C') < by_key('A'));
        assert!(by_key('C') < by_key('B'));
    }

    #[test]
    fn daily_fractions_vary() {
        let (_, ds) = datasets();
        let a = analyze_residence(&ds[0]);
        assert!(
            a.external.daily_byte_sd > 0.02,
            "sd {}",
            a.external.daily_byte_sd
        );
        let series: Vec<f64> = a.daily.iter().filter_map(|d| d.ext_bytes).collect();
        assert!(series.len() > 40);
    }

    #[test]
    fn hourly_series_is_complete() {
        let (_, ds) = datasets();
        let s = hourly_fraction_series(&ds[0], Scope::External, Metric::Bytes, 0..30);
        assert_eq!(s.len(), 30 * 24);
        assert!(s.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn as_analysis_matches_catalog_shape() {
        let (world, ds) = datasets();
        let fr = as_fractions(&ds, &world.rib, &world.registry, 0.0001);
        assert!(!fr.is_empty());
        let common = common_ases(&fr, 3);
        assert!(common.len() >= 20, "only {} common ASes", common.len());
        // ISP-category ASes must show low fractions; Web/Social high —
        // Fig 4's headline contrast (ByteDance is the WebSocial outlier).
        for (_, name, cat, fracs) in &common {
            let median = {
                let mut v = fracs.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v[v.len() / 2]
            };
            match cat {
                AsCategory::Isp => assert!(median < 0.5, "{name} median {median}"),
                AsCategory::WebSocial if name != "BYTEDANCE" && name != "AUTOMATTIC" => {
                    assert!(median > 0.5, "{name} median {median}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn domain_analysis_finds_laggards() {
        let (world, ds) = datasets();
        let domains = domain_fractions(&ds, &world.client_zone, &world.psl, 10_000, 3);
        assert!(domains.len() >= 10, "only {} domains", domains.len());
        // Zoom and Twitch (justin.tv) must appear with zero IPv6.
        for lagging in ["zoom.us", "justin.tv"] {
            let entry = domains.iter().find(|(d, _)| d.as_str() == lagging);
            if let Some((_, fracs)) = entry {
                assert!(
                    fracs.iter().all(|&f| f == 0.0),
                    "{lagging} should be IPv4-only"
                );
            }
        }
    }
}
