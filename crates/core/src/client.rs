//! Client-side adoption analysis (§3): Table 1, daily-fraction
//! distributions (Fig 1/16), AS-level and domain-level lead/lag
//! (Fig 3/4/17).
//!
//! Every analysis here has two entry points: a record-scanning function
//! over a materialized [`ResidenceDataset`] (the historical API, kept for
//! small runs and tests), and a streaming [`FlowSink`] aggregator
//! ([`analyze_agg`], [`AsAgg`], [`DomainAgg`], [`HourlyAgg`]) that computes
//! the same numbers while the synthesizer pushes records — the paper-scale
//! path, whose memory is independent of the number of simulated days. The
//! record-scanning functions are implemented *by* feeding the records
//! through the streaming aggregators, so the two paths cannot drift.

use bgpsim::{AsCategory, AsId, Registry, Rib};
use dnssim::{Name, NameId, NameTable};
use flowmon::sink::{drain_into, ScopeCell};
use flowmon::{FlowRecord, FlowSink, Scope, ScopeFamilyAgg};
use iputil::sym::SymVec;
use serde::Serialize;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use trafficgen::ResidenceDataset;
use webmodel::psl::Psl;

/// Microseconds per day (flowmon convention).
const DAY_US: u64 = 86_400_000_000;
const HOUR_US: u64 = 3_600_000_000;

/// Volume/fraction statistics for one scope (external or internal) of one
/// residence — one half of a Table 1 row.
#[derive(Debug, Clone, Serialize)]
pub struct ScopeStats {
    /// Total traffic volume in GB, rescaled to pre-sampling magnitude.
    pub total_gb: f64,
    /// IPv6 share of bytes (overall).
    pub v6_byte_fraction: f64,
    /// Total flow count in millions, rescaled.
    pub flows_m: f64,
    /// IPv6 share of flows (overall).
    pub v6_flow_fraction: f64,
    /// Mean of the per-day IPv6 byte fraction.
    pub daily_byte_mean: f64,
    /// Standard deviation of the per-day IPv6 byte fraction.
    pub daily_byte_sd: f64,
    /// Mean of the per-day IPv6 flow fraction.
    pub daily_flow_mean: f64,
    /// Standard deviation of the per-day IPv6 flow fraction.
    pub daily_flow_sd: f64,
}

/// Per-day IPv6 fractions for one residence (Fig 1/16 inputs).
#[derive(Debug, Clone, Serialize)]
pub struct DailyFractions {
    /// 0-based day index.
    pub day: u32,
    /// External IPv6 byte fraction (None when no external traffic that day).
    pub ext_bytes: Option<f64>,
    /// External IPv6 flow fraction.
    pub ext_flows: Option<f64>,
    /// Internal IPv6 byte fraction.
    pub int_bytes: Option<f64>,
    /// Internal IPv6 flow fraction.
    pub int_flows: Option<f64>,
}

/// Complete per-residence analysis (a Table 1 row plus the daily series).
#[derive(Debug, Clone, Serialize)]
pub struct ResidenceAnalysis {
    /// Residence letter.
    pub key: char,
    /// External (LAN↔WAN) statistics.
    pub external: ScopeStats,
    /// Internal (LAN↔LAN) statistics.
    pub internal: ScopeStats,
    /// Per-day fractions.
    pub daily: Vec<DailyFractions>,
}

/// Analyze one residence dataset into its Table 1 row and daily series
/// (record-scanning wrapper around [`analyze_agg`]).
pub fn analyze_residence(ds: &ResidenceDataset) -> ResidenceAnalysis {
    let mut agg = ScopeFamilyAgg::new(ds.num_days);
    drain_into(&ds.flows, &mut agg);
    analyze_agg(ds.profile.key, ds.scale, &agg)
}

/// Build a [`ResidenceAnalysis`] from a streamed [`ScopeFamilyAgg`] — the
/// paper-scale path: the aggregate was filled while synthesis ran, no
/// record was ever materialized, and the numbers equal
/// [`analyze_residence`]'s exactly (integer counters, same formulas).
pub fn analyze_agg(key: char, scale: f64, agg: &ScopeFamilyAgg) -> ResidenceAnalysis {
    let days = agg.num_days();
    let scope_stats = |scope: Scope| {
        let cell = agg.overall(scope);
        let daily_bytes: Vec<f64> = (0..days)
            .filter_map(|d| agg.day(d, scope).v6_byte_fraction())
            .collect();
        let daily_flows: Vec<f64> = (0..days)
            .filter_map(|d| agg.day(d, scope).v6_flow_fraction())
            .collect();
        ScopeStats {
            total_gb: cell.total_bytes() as f64 / scale / 1e9,
            v6_byte_fraction: cell.v6_byte_fraction().unwrap_or(0.0),
            flows_m: cell.total_flows() as f64 / scale / 1e6,
            v6_flow_fraction: cell.v6_flow_fraction().unwrap_or(0.0),
            daily_byte_mean: netstats::mean(&daily_bytes).unwrap_or(0.0),
            daily_byte_sd: netstats::sample_std(&daily_bytes).unwrap_or(0.0),
            daily_flow_mean: netstats::mean(&daily_flows).unwrap_or(0.0),
            daily_flow_sd: netstats::sample_std(&daily_flows).unwrap_or(0.0),
        }
    };

    let daily = (0..days)
        .map(|d| DailyFractions {
            day: d,
            ext_bytes: agg.day(d, Scope::External).v6_byte_fraction(),
            ext_flows: agg.day(d, Scope::External).v6_flow_fraction(),
            int_bytes: agg.day(d, Scope::Internal).v6_byte_fraction(),
            int_flows: agg.day(d, Scope::Internal).v6_flow_fraction(),
        })
        .collect();

    ResidenceAnalysis {
        key,
        external: scope_stats(Scope::External),
        internal: scope_stats(Scope::Internal),
        daily,
    }
}

/// Which metric to build an hourly series over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// IPv6 fraction of bytes.
    Bytes,
    /// IPv6 fraction of flows.
    Flows,
}

/// Streaming per-hour accumulator for one scope over a day range — the
/// MSTL figures' input, O(hours) memory. Feed it as a [`FlowSink`] during
/// synthesis (or via [`drain_into`] from records), then read either
/// metric's series: one aggregate serves both Fig 2 and Fig 13.
#[derive(Debug, Clone)]
pub struct HourlyAgg {
    scope: Scope,
    day_range: std::ops::Range<u32>,
    acc: Vec<ScopeCell>,
}

impl HourlyAgg {
    /// An empty aggregate for `scope` covering `day_range`.
    pub fn new(scope: Scope, day_range: std::ops::Range<u32>) -> HourlyAgg {
        let hours = day_range.len() * 24;
        HourlyAgg {
            scope,
            day_range,
            acc: vec![ScopeCell::default(); hours],
        }
    }

    /// The covered day range.
    pub fn day_range(&self) -> std::ops::Range<u32> {
        self.day_range.clone()
    }

    /// The hourly IPv6-fraction series. Hours without traffic carry the
    /// last observed value (a measurement gap, not a zero).
    pub fn series(&self, metric: Metric) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.acc.len());
        let mut last = 0.5;
        for a in &self.acc {
            let v = match metric {
                Metric::Bytes => a.v6_byte_fraction(),
                Metric::Flows => a.v6_flow_fraction(),
            };
            last = v.unwrap_or(last);
            out.push(last);
        }
        out
    }
}

impl FlowSink for HourlyAgg {
    fn accept(&mut self, f: &FlowRecord) {
        if f.scope != self.scope {
            return;
        }
        let day = (f.end / DAY_US) as u32;
        if !self.day_range.contains(&day) {
            return;
        }
        let hour = ((f.end - self.day_range.start as u64 * DAY_US) / HOUR_US) as usize;
        if hour < self.acc.len() {
            self.acc[hour].add(f);
        }
    }
}

/// Hourly IPv6-fraction series for MSTL (Fig 2/13) from a materialized
/// dataset — record-scanning wrapper around [`HourlyAgg`].
pub fn hourly_fraction_series(
    ds: &ResidenceDataset,
    scope: Scope,
    metric: Metric,
    day_range: std::ops::Range<u32>,
) -> Vec<f64> {
    let mut agg = HourlyAgg::new(scope, day_range);
    drain_into(&ds.flows, &mut agg);
    agg.series(metric)
}

/// Daily IPv6 byte-fraction series (Fig 14/15 input).
pub fn daily_fraction_series(analysis: &ResidenceAnalysis) -> Vec<f64> {
    let mut out = Vec::with_capacity(analysis.daily.len());
    let mut last = 0.5;
    for d in &analysis.daily {
        last = d.ext_bytes.unwrap_or(last);
        out.push(last);
    }
    out
}

/// Per-(AS, residence) IPv6 byte fraction (Fig 3/4 input, and one row of
/// the `as-fractions` per-AS flow-fraction table).
#[derive(Debug, Clone, Serialize)]
pub struct AsFraction {
    /// Origin AS.
    pub asn: u32,
    /// AS name from the registry.
    pub as_name: String,
    /// Functional category.
    pub category: AsCategory,
    /// Residence letter.
    pub residence: char,
    /// IPv6 byte fraction of this AS's traffic at this residence.
    pub fraction: f64,
    /// Total bytes (sampled scale).
    pub bytes: u64,
    /// Total flow records (sampled scale).
    pub flows: u64,
    /// IPv6 flow fraction of this AS's traffic at this residence.
    pub flow_fraction: f64,
    /// This AS's share of the residence's attributed external bytes (the
    /// quantity the `min_share` floor is applied to).
    pub share: f64,
}

/// Streaming per-AS accumulator for one residence: every external record
/// is attributed to its destination's origin AS while synthesis runs. The
/// state is bounded by the AS catalog, not by traffic volume.
///
/// Per-AS cells live in a dense [`SymVec`] keyed by the registry's AS
/// symbols ([`Registry::as_sym`]): after the RIB lookup, attribution costs
/// one `u32` hash and a vector index instead of hashing the sparse `AsId`
/// into a `HashMap<AsId, ScopeCell>` — what makes streaming the 100k-AS
/// long-tail world affordable (peak memory O(ASes), independent of days).
#[derive(Debug, Clone)]
pub struct AsAgg<'w> {
    rib: &'w Rib,
    registry: &'w Registry,
    per_as: SymVec<ScopeCell>,
    /// Origins the RIB announces but the registry never registered.
    /// Worldgen always registers before announcing, so this stays empty in
    /// practice; it exists so an unregistered origin degrades to the old
    /// sparse path instead of being dropped.
    unregistered: HashMap<AsId, ScopeCell>,
    total_bytes: u64,
}

impl<'w> AsAgg<'w> {
    /// An empty aggregate attributing through `rib`, keyed by the dense AS
    /// symbols of `registry`.
    pub fn new(rib: &'w Rib, registry: &'w Registry) -> AsAgg<'w> {
        AsAgg {
            rib,
            registry,
            per_as: SymVec::with_capacity(registry.as_count()),
            unregistered: HashMap::new(),
            total_bytes: 0,
        }
    }

    /// Fold one already-attributed external record into its AS cell.
    fn attribute(&mut self, f: &FlowRecord, asn: AsId) {
        match self.registry.as_sym(asn) {
            Some(sym) => self.per_as.get_mut_or_default(sym).add(f),
            None => self.unregistered.entry(asn).or_default().add(f),
        }
        self.total_bytes += f.total_bytes();
    }

    /// Total attributed external bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of distinct ASes observed so far.
    pub fn observed_as_count(&self) -> usize {
        self.per_as
            .iter()
            .filter(|(_, c)| c.total_flows() > 0)
            .count()
            + self.unregistered.len()
    }

    /// Extract this residence's [`AsFraction`] rows, keeping only ASes
    /// carrying **at least** `min_share` of the residence's attributed
    /// external bytes (paper: 0.01% — the floor is inclusive, an AS at
    /// exactly the threshold is counted). Rows are sorted by ASN.
    ///
    /// The share is compared as `bytes / total >= min_share`: when the
    /// AS's share *is* the rational behind `min_share`, the division
    /// rounds to the same double and the row is kept, where the previous
    /// `bytes < min_share * total` product could pick up a half-ulp and
    /// silently drop the exact-boundary AS (51 bytes of 3 000 at a 1.7%
    /// floor: `51 < 0.017 * 3000.0` is true in `f64`).
    pub fn fractions(&self, residence: char, min_share: f64) -> Vec<AsFraction> {
        let total = self.total_bytes;
        let row = |asn: AsId, name: String, category: AsCategory, acc: &ScopeCell| {
            let bytes = acc.total_bytes();
            let share = if total == 0 {
                0.0
            } else {
                bytes as f64 / total as f64
            };
            if share < min_share {
                return None;
            }
            Some(AsFraction {
                asn: asn.0,
                as_name: name,
                category,
                residence,
                fraction: acc.v6_byte_fraction().unwrap_or(0.0),
                bytes,
                flows: acc.total_flows(),
                flow_fraction: acc.v6_flow_fraction().unwrap_or(0.0),
                share,
            })
        };
        let mut out: Vec<AsFraction> = self
            .per_as
            .iter()
            .filter(|(_, acc)| acc.total_flows() > 0)
            .filter_map(|(sym, acc)| {
                let info = self.registry.info_of_sym(sym);
                row(info.asn, info.name.clone(), info.category, acc)
            })
            .chain(
                self.unregistered
                    .iter() // tidy:allow(nondeterministic-iteration): rows are fully sorted by unique asn two lines down
                    .filter_map(|(asn, acc)| row(*asn, String::new(), AsCategory::Other, acc)),
            )
            .collect();
        out.sort_by_key(|f| f.asn);
        out
    }
}

impl FlowSink for AsAgg<'_> {
    fn accept(&mut self, f: &FlowRecord) {
        if f.scope != Scope::External {
            return;
        }
        let Some(asn) = self.rib.origin_of(f.key.dst) else {
            return;
        };
        self.attribute(f, asn);
    }

    /// Batched attribution: one family-presplit pass resolves every
    /// external destination through [`Rib::origins_of_v4`]/[`origins_of_v6`]
    /// (value-only lookups — no per-hit `Prefix` materialisation), so a
    /// compiled RIB answers through the frozen engine's memoized,
    /// interleaved-prefetch batch path instead of one dependent-load chain
    /// per record. Processing all v4 records then all v6 reorders within
    /// the batch, but aggregation is commutative (per-AS counter adds), so
    /// the result is byte-identical to the per-record path whichever engine
    /// answers.
    ///
    /// [`origins_of_v6`]: bgpsim::Rib::origins_of_v6
    fn accept_batch(&mut self, records: &[FlowRecord]) {
        let mut rec4: Vec<&FlowRecord> = Vec::new();
        let mut a4: Vec<Ipv4Addr> = Vec::new();
        let mut rec6: Vec<&FlowRecord> = Vec::with_capacity(records.len());
        let mut a6: Vec<Ipv6Addr> = Vec::with_capacity(records.len());
        for f in records {
            if f.scope != Scope::External {
                continue;
            }
            match f.key.dst {
                IpAddr::V4(a) => {
                    rec4.push(f);
                    a4.push(a);
                }
                IpAddr::V6(a) => {
                    rec6.push(f);
                    a6.push(a);
                }
            }
        }
        for (f, origin) in rec4.iter().zip(self.rib.origins_of_v4(&a4)) {
            if let Some(asn) = origin {
                self.attribute(f, asn);
            }
        }
        for (f, origin) in rec6.iter().zip(self.rib.origins_of_v6(&a6)) {
            if let Some(asn) = origin {
                self.attribute(f, asn);
            }
        }
    }
}

/// Compute per-AS IPv6 byte fractions at each residence, keeping only ASes
/// carrying **at least** `min_share` of the residence's external bytes
/// (paper: 0.01%, inclusive at the boundary). Record-scanning wrapper
/// around [`AsAgg`]; rows come out grouped by residence (dataset order)
/// and sorted by ASN within one.
pub fn as_fractions(
    datasets: &[ResidenceDataset],
    rib: &Rib,
    registry: &Registry,
    min_share: f64,
) -> Vec<AsFraction> {
    let mut out = Vec::new();
    for ds in datasets {
        let mut agg = AsAgg::new(rib, registry);
        drain_into(&ds.flows, &mut agg);
        out.extend(agg.fractions(ds.profile.key, min_share));
    }
    out
}

/// Group AS fractions by AS, keeping only ASes observed at `min_residences`
/// or more residences (the paper's 35-AS population uses 3).
pub fn common_ases(
    fractions: &[AsFraction],
    min_residences: usize,
) -> Vec<(u32, String, AsCategory, Vec<f64>)> {
    let mut grouped: HashMap<u32, (String, AsCategory, Vec<f64>)> = HashMap::new();
    for f in fractions {
        let e = grouped
            .entry(f.asn)
            .or_insert_with(|| (f.as_name.clone(), f.category, Vec::new()));
        e.2.push(f.fraction);
    }
    let mut out: Vec<_> = grouped
        .into_iter() // tidy:allow(nondeterministic-iteration): rows are fully sorted by unique asn below
        .filter(|(_, (_, _, v))| v.len() >= min_residences)
        .map(|(asn, (name, cat, v))| (asn, name, cat, v))
        .collect();
    out.sort_by_key(|(asn, ..)| *asn);
    out
}

/// Streaming per-domain accumulator for one residence: external records
/// are reverse-resolved and folded into their eTLD+1 while synthesis runs.
///
/// Names are interned: the first record of a distinct FQDN pays one PSL
/// fold and two [`NameTable`] interns; every later record of that FQDN is
/// a string hash plus two dense-vector hops — no per-record `Name`
/// allocation, no hashing of the eTLD+1, no `HashMap<Name, ScopeCell>`.
#[derive(Debug, Clone)]
pub struct DomainAgg<'w> {
    zone: &'w dnssim::ZoneDb,
    psl: &'w Psl,
    /// Every FQDN seen in reverse DNS, interned.
    fqdns: NameTable,
    /// FQDN id → its domain's id (parallel to `fqdns`).
    fqdn_domain: Vec<NameId>,
    /// Every eTLD+1 observed, interned — iteration order is first-observed,
    /// which [`domain_fractions_from`] re-sorts anyway.
    domains: NameTable,
    /// Per-domain counters, indexed by domain [`NameId`].
    cells: Vec<ScopeCell>,
}

impl<'w> DomainAgg<'w> {
    /// An empty aggregate resolving through `zone`/`psl`.
    pub fn new(zone: &'w dnssim::ZoneDb, psl: &'w Psl) -> DomainAgg<'w> {
        DomainAgg {
            zone,
            psl,
            fqdns: NameTable::new(),
            fqdn_domain: Vec::new(),
            domains: NameTable::new(),
            cells: Vec::new(),
        }
    }

    /// Iterate `(domain, counters)` over every observed eTLD+1, in
    /// first-observed order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &ScopeCell)> {
        self.domains
            .iter()
            .map(|(id, name)| (name, &self.cells[id.index()]))
    }
}

impl FlowSink for DomainAgg<'_> {
    fn accept(&mut self, f: &FlowRecord) {
        if f.scope != Scope::External {
            return;
        }
        let Some(name) = self.zone.reverse_lookup(f.key.dst) else {
            return;
        };
        let (fid, new_fqdn) = self.fqdns.intern_full(name);
        let did = if new_fqdn {
            let domain = self.psl.etld_plus_one(name).unwrap_or_else(|| name.clone());
            let did = self.domains.intern(&domain);
            self.fqdn_domain.push(did);
            if did.index() >= self.cells.len() {
                self.cells.resize_with(did.index() + 1, ScopeCell::default);
            }
            did
        } else {
            self.fqdn_domain[fid.index()]
        };
        self.cells[did.index()].add(f);
    }
}

/// Combine per-residence [`DomainAgg`]s (one per residence, any order —
/// fractions come out in input order) into the Fig 17 rows: only domains
/// observed at `min_residences`+ residences with at least `min_bytes`
/// (sampled scale) total are kept. Rows are sorted by domain.
pub fn domain_fractions_from(
    aggs: &[DomainAgg<'_>],
    min_bytes: u64,
    min_residences: usize,
) -> Vec<(Name, Vec<f64>)> {
    let mut merged: HashMap<&Name, Vec<&ScopeCell>> = HashMap::new();
    for agg in aggs {
        for (domain, acc) in agg.iter() {
            merged.entry(domain).or_default().push(acc);
        }
    }
    let mut out: Vec<(Name, Vec<f64>)> = merged
        .into_iter() // tidy:allow(nondeterministic-iteration): rows are fully sorted by unique domain below
        .filter_map(|(domain, per_res)| {
            let total: u64 = per_res.iter().map(|a| a.total_bytes()).sum();
            if per_res.len() < min_residences || total < min_bytes {
                return None;
            }
            let fractions: Vec<f64> = per_res
                .iter()
                .filter_map(|a| a.v6_byte_fraction())
                .collect();
            Some((domain.clone(), fractions))
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Per-(domain, residence) IPv6 byte fractions via reverse DNS (Fig 17).
/// Record-scanning wrapper around [`DomainAgg`]/[`domain_fractions_from`].
pub fn domain_fractions(
    datasets: &[ResidenceDataset],
    zone: &dnssim::ZoneDb,
    psl: &Psl,
    min_bytes: u64,
    min_residences: usize,
) -> Vec<(Name, Vec<f64>)> {
    let aggs: Vec<DomainAgg<'_>> = datasets
        .iter()
        .map(|ds| {
            let mut agg = DomainAgg::new(zone, psl);
            drain_into(&ds.flows, &mut agg);
            agg
        })
        .collect();
    domain_fractions_from(&aggs, min_bytes, min_residences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafficgen::{synthesize_all, TrafficConfig};
    use worldgen::{World, WorldConfig};

    fn datasets() -> (World, Vec<ResidenceDataset>) {
        let world = World::generate(&WorldConfig::small());
        let ds = synthesize_all(&world, &TrafficConfig::fast());
        (world, ds)
    }

    #[test]
    fn table1_shape() {
        let (_, ds) = datasets();
        let analyses: Vec<ResidenceAnalysis> = ds.iter().map(analyze_residence).collect();
        assert_eq!(analyses.len(), 5);
        // Measured v6 byte fractions should land near the paper's overall
        // Table 1 values. D/E are volatile by design (rare event days
        // dominate their totals, exactly like the paper's E: 6.6% overall
        // vs 45.9% daily mean), so their bands are wide.
        for (a, d) in analyses.iter().zip(&ds) {
            let paper = d.profile.paper_ext_v6_bytes;
            let tol = if a.key == 'E' || a.key == 'D' {
                0.35
            } else {
                0.15
            };
            assert!(
                (a.external.v6_byte_fraction - paper).abs() < tol,
                "residence {}: measured {:.3} vs paper {paper:.3}",
                a.key,
                a.external.v6_byte_fraction
            );
        }
        // C must be the lowest of the high-volume residences (paper).
        let by_key = |k: char| {
            analyses
                .iter()
                .find(|a| a.key == k)
                .unwrap()
                .external
                .v6_byte_fraction
        };
        assert!(by_key('C') < by_key('A'));
        assert!(by_key('C') < by_key('B'));
    }

    #[test]
    fn daily_fractions_vary() {
        let (_, ds) = datasets();
        let a = analyze_residence(&ds[0]);
        assert!(
            a.external.daily_byte_sd > 0.02,
            "sd {}",
            a.external.daily_byte_sd
        );
        let series: Vec<f64> = a.daily.iter().filter_map(|d| d.ext_bytes).collect();
        assert!(series.len() > 40);
    }

    #[test]
    fn hourly_series_is_complete() {
        let (_, ds) = datasets();
        let s = hourly_fraction_series(&ds[0], Scope::External, Metric::Bytes, 0..30);
        assert_eq!(s.len(), 30 * 24);
        assert!(s.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn as_analysis_matches_catalog_shape() {
        let (world, ds) = datasets();
        let fr = as_fractions(&ds, &world.rib, &world.registry, 0.0001);
        assert!(!fr.is_empty());
        let common = common_ases(&fr, 3);
        assert!(common.len() >= 20, "only {} common ASes", common.len());
        // ISP-category ASes must show low fractions; Web/Social high —
        // Fig 4's headline contrast (ByteDance is the WebSocial outlier).
        for (_, name, cat, fracs) in &common {
            let median = {
                let mut v = fracs.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v[v.len() / 2]
            };
            match cat {
                AsCategory::Isp => assert!(median < 0.5, "{name} median {median}"),
                AsCategory::WebSocial if name != "BYTEDANCE" && name != "AUTOMATTIC" => {
                    assert!(median > 0.5, "{name} median {median}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn min_share_floor_is_inclusive_at_the_boundary() {
        use flowmon::FlowKey;
        // One AS carries exactly 0.01% of the attributed external bytes.
        // The paper counts ASes carrying *at least* min_share, so the
        // boundary-exact AS must be kept.
        let mut registry = Registry::new();
        registry.add_org("org-x".into(), "X");
        registry.add_as(AsId(64500), "BIG", "org-x".into(), AsCategory::Hosting);
        registry.add_as(AsId(64501), "TINY", "org-x".into(), AsCategory::Other);
        let mut rib = Rib::new();
        rib.announce("198.51.100.0/24".parse().unwrap(), AsId(64500));
        rib.announce("203.0.113.0/24".parse().unwrap(), AsId(64501));
        let rec = |dst: &str, bytes: u64| FlowRecord {
            key: FlowKey::tcp(
                "192.168.1.2".parse().unwrap(),
                40_000,
                dst.parse().unwrap(),
                443,
            ),
            start: 0,
            end: 1_000,
            bytes_orig: 0,
            bytes_reply: bytes,
            packets_orig: 1,
            packets_reply: 1,
            scope: Scope::External,
        };
        let mut agg = AsAgg::new(&rib, &registry);
        // 51 / 3_000 is exactly the rational behind min_share = 1.7%.
        agg.accept(&rec("198.51.100.9", 2_949));
        agg.accept(&rec("203.0.113.9", 51));
        // The old `bytes < min_share * total` product comparison picks up a
        // half-ulp and would have dropped the boundary AS — assert the
        // float trap is real on this platform, then that the fix keeps it.
        let (bytes, total, min_share) = (51u64, 3_000u64, 0.017f64);
        assert!(
            (bytes as f64) < min_share * total as f64,
            "product comparison no longer exhibits the half-ulp trap"
        );
        let rows = agg.fractions('A', 0.017);
        let tiny = rows.iter().find(|r| r.asn == 64501);
        assert!(tiny.is_some(), "boundary-exact AS must be kept: {rows:?}");
        assert!((tiny.unwrap().share - 0.017).abs() < 1e-15);
        // Strictly-below stays excluded.
        let mut agg2 = AsAgg::new(&rib, &registry);
        agg2.accept(&rec("198.51.100.9", 2_950));
        agg2.accept(&rec("203.0.113.9", 50));
        assert!(agg2.fractions('A', 0.017).iter().all(|r| r.asn != 64501));
    }

    #[test]
    fn domain_analysis_finds_laggards() {
        let (world, ds) = datasets();
        let domains = domain_fractions(&ds, &world.client_zone, &world.psl, 10_000, 3);
        assert!(domains.len() >= 10, "only {} domains", domains.len());
        // Zoom and Twitch (justin.tv) must appear with zero IPv6.
        for lagging in ["zoom.us", "justin.tv"] {
            let entry = domains.iter().find(|(d, _)| d.as_str() == lagging);
            if let Some((_, fracs)) = entry {
                assert!(
                    fracs.iter().all(|&f| f == 0.0),
                    "{lagging} should be IPv4-only"
                );
            }
        }
    }
}
