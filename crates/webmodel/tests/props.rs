//! Property tests for the web model: PSL laws and top-list sampling.

use dnssim::Name;
use proptest::prelude::*;
use webmodel::psl::Psl;
use webmodel::toplist::TopList;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z]{1,8}".prop_map(|s| s)
}

fn arb_name() -> impl Strategy<Value = Name> {
    (
        proptest::collection::vec(arb_label(), 1..5),
        prop_oneof![
            Just("com".to_string()),
            Just("co.uk".to_string()),
            Just("net.il".to_string()),
            Just("unknowntld".to_string()),
            Just("test".to_string()),
        ],
    )
        .prop_map(|(labels, tld)| Name::new(&format!("{}.{tld}", labels.join("."))))
}

proptest! {
    /// eTLD+1 laws: the registrable domain is a suffix of the name, is
    /// itself its own eTLD+1 (idempotence), and shares the public suffix.
    #[test]
    fn etld1_laws(name in arb_name()) {
        let psl = Psl::builtin();
        if let Some(etld1) = psl.etld_plus_one(&name) {
            prop_assert!(name.is_subdomain_of(&etld1), "{name} vs {etld1}");
            prop_assert_eq!(psl.etld_plus_one(&etld1), Some(etld1.clone()));
            prop_assert_eq!(
                psl.public_suffix(&name),
                psl.public_suffix(&etld1)
            );
            // Exactly one label more than the public suffix.
            prop_assert_eq!(
                etld1.label_count(),
                psl.public_suffix(&name).label_count() + 1
            );
        } else {
            // Only bare suffixes lack a registrable domain.
            prop_assert_eq!(psl.public_suffix(&name).label_count(), name.label_count());
        }
    }

    /// same_site is an equivalence on names sharing an eTLD+1.
    #[test]
    fn same_site_reflexive_symmetric(a in arb_name(), b in arb_name()) {
        let psl = Psl::builtin();
        if psl.etld_plus_one(&a).is_some() {
            prop_assert!(psl.same_site(&a, &a));
        }
        prop_assert_eq!(psl.same_site(&a, &b), psl.same_site(&b, &a));
    }

    /// Zipf sampling stays in range and prefers the head.
    #[test]
    fn zipf_sampling_in_range(n in 10usize..500, seed in any::<u64>()) {
        use rand::SeedableRng;
        let list = TopList::new(
            (0..n).map(|i| Name::new(&format!("s{i}.test"))).collect(),
        );
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut head = 0usize;
        for _ in 0..300 {
            let r = list.sample_rank(&mut rng);
            prop_assert!((1..=n).contains(&r));
            if r <= n / 2 {
                head += 1;
            }
        }
        // Top half should get well over half the draws for Zipf s=1.
        prop_assert!(head > 150, "head draws {head}/300");
    }
}
