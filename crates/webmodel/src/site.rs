//! Websites, pages, embedded resources and internal links.

use crate::resource::ResourceType;
use dnssim::Name;
use serde::{Deserialize, Serialize};

/// A reference to an embedded resource: the FQDN it loads from and its type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRef {
    /// FQDN the browser fetches from.
    pub fqdn: Name,
    /// Request type.
    pub rtype: ResourceType,
    /// True when the resource's eTLD+1 equals the site's (first-party).
    pub first_party: bool,
}

/// One page of a website.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Page {
    /// Path identifier (e.g. `"/"`, `"/about"`).
    pub path: String,
    /// Resources embedded in the rendered page (after all dependency
    /// resolution — the synthetic equivalent of a full browser load).
    pub resources: Vec<ResourceRef>,
    /// Indices (into [`Website::pages`]) of same-site pages this page links
    /// to; the crawler clicks up to five of them.
    pub links: Vec<usize>,
}

/// A website on the top list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Website {
    /// 1-based rank on the top list.
    pub rank: usize,
    /// The listed domain (eTLD+1, like Tranco entries).
    pub domain: Name,
    /// The FQDN the main page actually lives at after HTTP redirects
    /// (commonly `www.<domain>`; sometimes another site entirely).
    pub serving_fqdn: Name,
    /// Pages; index 0 is the main page.
    pub pages: Vec<Page>,
}

impl Website {
    /// The main page.
    pub fn main_page(&self) -> &Page {
        &self.pages[0]
    }

    /// All distinct resource FQDNs across the given pages (main page plus
    /// clicked links), preserving first-seen order.
    pub fn resource_fqdns(&self, page_indices: &[usize]) -> Vec<&ResourceRef> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for &pi in page_indices {
            if let Some(page) = self.pages.get(pi) {
                for r in &page.resources {
                    if seen.insert(&r.fqdn) {
                        out.push(r);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> Website {
        Website {
            rank: 1,
            domain: Name::new("example.test"),
            serving_fqdn: Name::new("www.example.test"),
            pages: vec![
                Page {
                    path: "/".into(),
                    resources: vec![
                        ResourceRef {
                            fqdn: Name::new("static.example.test"),
                            rtype: ResourceType::Image,
                            first_party: true,
                        },
                        ResourceRef {
                            fqdn: Name::new("ads.tracker.test"),
                            rtype: ResourceType::Script,
                            first_party: false,
                        },
                    ],
                    links: vec![1],
                },
                Page {
                    path: "/about".into(),
                    resources: vec![
                        ResourceRef {
                            fqdn: Name::new("static.example.test"),
                            rtype: ResourceType::Image,
                            first_party: true,
                        },
                        ResourceRef {
                            fqdn: Name::new("fonts.assets.test"),
                            rtype: ResourceType::Font,
                            first_party: false,
                        },
                    ],
                    links: vec![],
                },
            ],
        }
    }

    #[test]
    fn main_page_is_first() {
        assert_eq!(site().main_page().path, "/");
    }

    #[test]
    fn resource_fqdns_deduplicate_across_pages() {
        let s = site();
        let all = s.resource_fqdns(&[0, 1]);
        let names: Vec<&str> = all.iter().map(|r| r.fqdn.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "static.example.test",
                "ads.tracker.test",
                "fonts.assets.test"
            ]
        );
    }

    #[test]
    fn main_page_only_misses_deeper_resources() {
        let s = site();
        let main_only = s.resource_fqdns(&[0]);
        assert_eq!(
            main_only.len(),
            2,
            "the font dependency is only found by clicking"
        );
    }

    #[test]
    fn out_of_range_pages_ignored() {
        let s = site();
        assert_eq!(s.resource_fqdns(&[0, 7]).len(), 2);
    }
}
