//! Deterministic domain-name generation.
//!
//! The world generator needs hundreds of thousands of distinct, plausibly
//! shaped registrable domains. Names are built from consonant-vowel
//! syllables plus an optional numeric suffix, over a weighted TLD mix that
//! loosely matches the population of real top lists (.com-heavy with a
//! ccTLD tail).

use dnssim::Name;
use rand::Rng;
use std::collections::HashSet;

const CONSONANTS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "st",
    "tr", "ch", "br", "pl", "cr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];

/// Weighted TLD mix (rough top-list shape).
const TLDS: &[(&str, u32)] = &[
    ("com", 48),
    ("net", 8),
    ("org", 8),
    ("io", 4),
    ("co.uk", 3),
    ("de", 3),
    ("ru", 2),
    ("jp", 2),
    ("fr", 2),
    ("com.br", 2),
    ("nl", 2),
    ("com.au", 1),
    ("in", 1),
    ("it", 1),
    ("pl", 1),
    ("es", 1),
    ("info", 1),
    ("xyz", 1),
    ("dev", 1),
    ("app", 1),
    ("cloud", 1),
    ("online", 1),
    ("net.il", 1),
    ("co.jp", 1),
    ("com.cn", 1),
    ("tv", 1),
];

/// Subdomain labels weighted towards the ones real sites use.
const SUBDOMAIN_LABELS: &[&str] = &[
    "www",
    "cdn",
    "static",
    "img",
    "assets",
    "api",
    "media",
    "app",
    "blog",
    "shop",
    "mail",
    "login",
    "edge",
    "data",
    "files",
    "video",
    "js",
    "css",
    "track",
    "ads",
    "analytics",
    "content",
    "secure",
    "m",
    "news",
    "docs",
    "status",
    "web",
    "origin",
    "portal",
];

/// A deterministic, collision-free domain-name generator.
#[derive(Debug, Clone)]
pub struct NameGenerator {
    used: HashSet<Name>,
}

impl NameGenerator {
    /// A fresh generator (no names used yet).
    pub fn new() -> NameGenerator {
        NameGenerator {
            used: HashSet::new(),
        }
    }

    /// Generate a unique registrable domain (eTLD+1) using `rng`.
    pub fn registrable<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Name {
        loop {
            let label = Self::word(rng);
            let tld = Self::pick_tld(rng);
            let candidate = Name::new(&format!("{label}.{tld}"));
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// Generate a unique registrable domain under a fixed TLD.
    pub fn registrable_in<R: Rng + ?Sized>(&mut self, rng: &mut R, tld: &str) -> Name {
        loop {
            let label = Self::word(rng);
            let candidate = Name::new(&format!("{label}.{tld}"));
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// A plausible subdomain label (may repeat across parents — uniqueness
    /// only matters for registrable domains).
    pub fn subdomain_label<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
        SUBDOMAIN_LABELS[rng.gen_range(0..SUBDOMAIN_LABELS.len())]
    }

    /// Number of distinct registrable names handed out.
    pub fn issued(&self) -> usize {
        self.used.len()
    }

    /// Mark a name as taken (for hand-curated catalog entries) so random
    /// generation never collides with it. Returns false if already taken.
    pub fn reserve(&mut self, name: Name) -> bool {
        self.used.insert(name)
    }

    fn word<R: Rng + ?Sized>(rng: &mut R) -> String {
        let syllables = rng.gen_range(2..=4);
        let mut s = String::new();
        for _ in 0..syllables {
            s.push_str(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]);
            s.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        }
        if rng.gen_bool(0.12) {
            s.push_str(&rng.gen_range(1..100u32).to_string());
        }
        s
    }

    fn pick_tld<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
        let total: u32 = TLDS.iter().map(|(_, w)| w).sum();
        let mut roll = rng.gen_range(0..total);
        for (tld, w) in TLDS {
            if roll < *w {
                return tld;
            }
            roll -= w;
        }
        unreachable!("weights cover the range")
    }
}

impl Default for NameGenerator {
    fn default() -> Self {
        NameGenerator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psl::Psl;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_unique() {
        let mut g = NameGenerator::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        for _ in 0..5000 {
            assert!(seen.insert(g.registrable(&mut rng)));
        }
        assert_eq!(g.issued(), 5000);
    }

    #[test]
    fn names_are_registrable_domains() {
        let psl = Psl::builtin();
        let mut g = NameGenerator::new();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..2000 {
            let n = g.registrable(&mut rng);
            assert_eq!(
                psl.etld_plus_one(&n),
                Some(n.clone()),
                "{n} must be exactly an eTLD+1"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen_seq = |seed| {
            let mut g = NameGenerator::new();
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..50).map(|_| g.registrable(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen_seq(7), gen_seq(7));
        assert_ne!(gen_seq(7), gen_seq(8));
    }

    #[test]
    fn fixed_tld_generation() {
        let mut g = NameGenerator::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = g.registrable_in(&mut rng, "co.uk");
        assert!(n.as_str().ends_with(".co.uk"));
    }

    #[test]
    fn reserve_blocks_collisions() {
        let mut g = NameGenerator::new();
        assert!(g.reserve(Name::new("doubleclick.test")));
        assert!(!g.reserve(Name::new("doubleclick.test")));
    }
}
