//! A Tranco-like ranked top list.

use dnssim::{Name, NameTable};
use rand::Rng;

/// A ranked list of websites (rank 1 = most popular), with Zipf popularity
/// weights used by the traffic synthesizer to pick destinations.
///
/// The list *is* an interned [`NameTable`]: interning order is rank order,
/// so a domain's dense [`NameId`](dnssim::NameId) index is its 0-based rank
/// — one structure serves ranking, membership and storage where the old
/// implementation kept the entries `Vec` plus a shadow
/// `HashMap<Name, usize>` of every name.
#[derive(Debug, Clone)]
pub struct TopList {
    names: NameTable,
    /// Zipf exponent for popularity sampling.
    pub zipf_s: f64,
}

impl TopList {
    /// Build a list from ranked entries (index 0 = rank 1).
    ///
    /// # Panics
    /// Panics on duplicate entries — a top list ranks each domain once.
    pub fn new(entries: Vec<Name>) -> TopList {
        let mut names = NameTable::new();
        for n in &entries {
            let (_, new) = names.intern_full(n);
            assert!(new, "duplicate top-list entry: {n}");
        }
        TopList { names, zipf_s: 1.0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The domain at a 1-based rank.
    pub fn at_rank(&self, rank: usize) -> Option<&Name> {
        self.names.as_slice().get(rank.checked_sub(1)?)
    }

    /// The 1-based rank of a domain.
    pub fn rank_of(&self, name: &Name) -> Option<usize> {
        self.names.lookup(name).map(|id| id.index() + 1)
    }

    /// Iterate entries in rank order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Name)> {
        self.names.iter().map(|(id, n)| (id.index() + 1, n))
    }

    /// The top `n` entries (or fewer).
    pub fn top(&self, n: usize) -> &[Name] {
        let all = self.names.as_slice();
        &all[..n.min(all.len())]
    }

    /// Sample a rank with a (truncated) Zipf distribution via inverse
    /// transform on the harmonic weights. O(log n) per draw after an O(n)
    /// lazy table build is avoided by using the standard approximation for
    /// s = 1: rank ≈ exp(U · ln(n+1)).
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.names.len().max(1) as f64;
        if (self.zipf_s - 1.0).abs() < 1e-9 {
            let u: f64 = rng.gen();
            let r = ((n + 1.0).powf(u)).floor() as usize;
            r.clamp(1, self.names.len().max(1))
        } else {
            // General s: inverse-CDF on the continuous approximation.
            let s = self.zipf_s;
            let u: f64 = rng.gen();
            let max_cdf = (n.powf(1.0 - s) - 1.0) / (1.0 - s);
            let x = (1.0 + u * max_cdf * (1.0 - s)).powf(1.0 / (1.0 - s));
            (x.floor() as usize).clamp(1, self.names.len().max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn list(n: usize) -> TopList {
        TopList::new(
            (0..n)
                .map(|i| Name::new(&format!("site{i}.test")))
                .collect(),
        )
    }

    #[test]
    fn ranks_are_one_based() {
        let l = list(10);
        assert_eq!(l.at_rank(1).unwrap().as_str(), "site0.test");
        assert_eq!(l.at_rank(10).unwrap().as_str(), "site9.test");
        assert!(l.at_rank(0).is_none());
        assert!(l.at_rank(11).is_none());
        assert_eq!(l.rank_of(&Name::new("site4.test")), Some(5));
        assert_eq!(l.rank_of(&Name::new("nope.test")), None);
    }

    #[test]
    fn top_slicing() {
        let l = list(100);
        assert_eq!(l.top(10).len(), 10);
        assert_eq!(l.top(1000).len(), 100);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        TopList::new(vec![Name::new("a.test"), Name::new("a.test")]);
    }

    #[test]
    fn zipf_sampling_favors_head() {
        let l = list(1000);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut head = 0;
        let draws = 20_000;
        for _ in 0..draws {
            let r = l.sample_rank(&mut rng);
            assert!((1..=1000).contains(&r));
            if r <= 100 {
                head += 1;
            }
        }
        // For Zipf s=1 over 1000 ranks, P(rank <= 100) = ln(101)/ln(1001) ≈ 0.67.
        let frac = head as f64 / draws as f64;
        assert!((0.6..0.75).contains(&frac), "head fraction {frac}");
    }

    #[test]
    fn iterates_in_rank_order() {
        let l = list(3);
        let ranks: Vec<usize> = l.iter().map(|(r, _)| r).collect();
        assert_eq!(ranks, vec![1, 2, 3]);
    }
}
