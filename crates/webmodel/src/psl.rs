//! Public Suffix List matching and eTLD+1 extraction.
//!
//! Implements the [publicsuffix.org](https://publicsuffix.org) algorithm:
//! exact rules, wildcard rules (`*.ck`), and exception rules (`!www.ck`).
//! The longest matching rule wins; exception rules beat everything; names
//! with no matching rule fall back to the implicit `*` rule (the TLD is the
//! public suffix).
//!
//! The embedded rule set covers the common ICANN suffixes appearing in the
//! paper's domain tables (appendix D includes `net.il`, `com.au`, `com.br`,
//! `co.uk`-style names) plus the reserved `test`/`example` TLDs used by the
//! synthetic world.

use dnssim::Name;
use std::collections::HashSet;

/// Built-in ICANN-style suffix rules (subset sufficient for the suite).
const BUILTIN_RULES: &[&str] = &[
    // Generic TLDs.
    "com",
    "net",
    "org",
    "io",
    "info",
    "biz",
    "dev",
    "app",
    "edu",
    "gov",
    "mil",
    "int",
    "cloud",
    "online",
    "site",
    "store",
    "tech",
    "xyz",
    "top",
    "club",
    "tv",
    "me",
    "cc",
    "us",
    "eu",
    // Reserved for testing/documentation (RFC 2606) — the synthetic world
    // lives here.
    "test",
    "example",
    "invalid",
    "localhost",
    // Country codes with common second-level registrations.
    "uk",
    "co.uk",
    "org.uk",
    "ac.uk",
    "gov.uk",
    "au",
    "com.au",
    "net.au",
    "org.au",
    "br",
    "com.br",
    "net.br",
    "jp",
    "co.jp",
    "ne.jp",
    "or.jp",
    "cn",
    "com.cn",
    "net.cn",
    "in",
    "co.in",
    "net.in",
    "il",
    "co.il",
    "net.il",
    "nz",
    "co.nz",
    "net.nz",
    "za",
    "co.za",
    "kr",
    "co.kr",
    "tw",
    "com.tw",
    "hk",
    "com.hk",
    "sg",
    "com.sg",
    "th",
    "co.th",
    "my",
    "com.my",
    "mx",
    "com.mx",
    "ar",
    "com.ar",
    "vn",
    "com.vn",
    "id",
    "co.id",
    "ph",
    "com.ph",
    "tr",
    "com.tr",
    "ru",
    "de",
    "fr",
    "nl",
    "es",
    "it",
    "pl",
    "se",
    "no",
    "fi",
    "dk",
    "gr",
    "pt",
    "hu",
    "be",
    "at",
    "ch",
    "cz",
    "ro",
    "sk",
    "ca",
    "ie",
    "lu",
    // Wildcard + exception examples from the PSL spec (kept for fidelity and
    // exercised by tests).
    "*.ck",
    "!www.ck",
];

/// A compiled Public Suffix List.
#[derive(Debug, Clone)]
pub struct Psl {
    exact: HashSet<String>,
    wildcard: HashSet<String>,  // stored without the "*." prefix
    exception: HashSet<String>, // stored without the "!" prefix
}

impl Psl {
    /// Compile a rule list (PSL syntax: one rule per string).
    pub fn new<'a, I: IntoIterator<Item = &'a str>>(rules: I) -> Psl {
        let mut psl = Psl {
            exact: HashSet::new(),
            wildcard: HashSet::new(),
            exception: HashSet::new(),
        };
        for rule in rules {
            let rule = rule.trim().to_ascii_lowercase();
            if rule.is_empty() {
                continue;
            }
            if let Some(rest) = rule.strip_prefix('!') {
                psl.exception.insert(rest.to_string());
            } else if let Some(rest) = rule.strip_prefix("*.") {
                psl.wildcard.insert(rest.to_string());
            } else {
                psl.exact.insert(rule);
            }
        }
        psl
    }

    /// The built-in rule set.
    pub fn builtin() -> Psl {
        Psl::new(BUILTIN_RULES.iter().copied())
    }

    /// Length (in labels) of the public suffix of `name`.
    fn suffix_label_count(&self, name: &Name) -> usize {
        let labels: Vec<&str> = name.labels().collect();
        let n = labels.len();
        let mut best = 1; // implicit "*" rule: the TLD is a public suffix
        for start in 0..n {
            let candidate = labels[start..].join(".");
            // Exception rule: the public suffix is the candidate *minus* its
            // leftmost label.
            if self.exception.contains(&candidate) {
                return n - start - 1;
            }
            if self.exact.contains(&candidate) {
                best = best.max(n - start);
            }
            // Wildcard rule "*.X" matches "<label>.X".
            if start + 1 < n {
                let tail = labels[start + 1..].join(".");
                if self.wildcard.contains(&tail) {
                    best = best.max(n - start);
                }
            }
        }
        best
    }

    /// The public suffix of `name` (e.g. `co.uk` for `www.example.co.uk`).
    pub fn public_suffix(&self, name: &Name) -> Name {
        let count = self.suffix_label_count(name);
        name.suffix(count)
    }

    /// The registrable domain (eTLD+1): the public suffix plus one label.
    /// `None` when the name *is* a public suffix (or shorter).
    pub fn etld_plus_one(&self, name: &Name) -> Option<Name> {
        let count = self.suffix_label_count(name);
        if name.label_count() <= count {
            return None;
        }
        Some(name.suffix(count + 1))
    }

    /// Are two names part of the same registrable domain? Names that lack a
    /// registrable domain (bare suffixes) never match anything.
    pub fn same_site(&self, a: &Name, b: &Name) -> bool {
        match (self.etld_plus_one(a), self.etld_plus_one(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

impl Default for Psl {
    fn default() -> Self {
        Psl::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psl() -> Psl {
        Psl::builtin()
    }

    #[test]
    fn simple_tld() {
        let p = psl();
        assert_eq!(p.public_suffix(&"www.example.com".into()).as_str(), "com");
        assert_eq!(
            p.etld_plus_one(&"www.example.com".into()).unwrap().as_str(),
            "example.com"
        );
        assert_eq!(
            p.etld_plus_one(&"a.b.c.example.com".into())
                .unwrap()
                .as_str(),
            "example.com"
        );
    }

    #[test]
    fn second_level_suffixes() {
        let p = psl();
        assert_eq!(
            p.public_suffix(&"www.example.co.uk".into()).as_str(),
            "co.uk"
        );
        assert_eq!(
            p.etld_plus_one(&"www.example.co.uk".into())
                .unwrap()
                .as_str(),
            "example.co.uk"
        );
        // The paper's appendix D has netvision.net.il.
        assert_eq!(
            p.etld_plus_one(&"dialup.netvision.net.il".into())
                .unwrap()
                .as_str(),
            "netvision.net.il"
        );
    }

    #[test]
    fn bare_suffix_has_no_etld_plus_one() {
        let p = psl();
        assert_eq!(p.etld_plus_one(&"com".into()), None);
        assert_eq!(p.etld_plus_one(&"co.uk".into()), None);
    }

    #[test]
    fn unknown_tld_falls_back_to_star_rule() {
        let p = psl();
        assert_eq!(
            p.public_suffix(&"foo.bar.unknowntld".into()).as_str(),
            "unknowntld"
        );
        assert_eq!(
            p.etld_plus_one(&"foo.bar.unknowntld".into())
                .unwrap()
                .as_str(),
            "bar.unknowntld"
        );
    }

    #[test]
    fn wildcard_and_exception_rules() {
        let p = psl();
        // *.ck: every <label>.ck is a public suffix...
        assert_eq!(
            p.etld_plus_one(&"shop.site.whatever.ck".into())
                .unwrap()
                .as_str(),
            "site.whatever.ck"
        );
        // ...except www.ck (exception rule), which is registrable itself.
        assert_eq!(
            p.etld_plus_one(&"www.ck".into()).unwrap().as_str(),
            "www.ck"
        );
        assert_eq!(
            p.etld_plus_one(&"foo.www.ck".into()).unwrap().as_str(),
            "www.ck"
        );
    }

    #[test]
    fn same_site_relation() {
        let p = psl();
        assert!(p.same_site(&"a.example.com".into(), &"b.example.com".into()));
        assert!(p.same_site(&"example.com".into(), &"cdn.example.com".into()));
        assert!(!p.same_site(&"a.example.com".into(), &"a.example.org".into()));
        assert!(!p.same_site(&"a.foo.co.uk".into(), &"a.bar.co.uk".into()));
        assert!(!p.same_site(&"com".into(), &"com".into()));
    }

    #[test]
    fn custom_rules() {
        let p = Psl::new(["platform.test", "*.hosted.test"]);
        assert_eq!(
            p.etld_plus_one(&"tenant1.platform.test".into())
                .unwrap()
                .as_str(),
            "tenant1.platform.test"
        );
        assert_eq!(
            p.etld_plus_one(&"x.y.eu.hosted.test".into())
                .unwrap()
                .as_str(),
            "y.eu.hosted.test"
        );
    }
}
