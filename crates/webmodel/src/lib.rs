//! # webmodel — the synthetic web
//!
//! Structural model of the web that §4 and §5 of the paper crawl and
//! classify:
//!
//! * [`psl`] — a Public Suffix List implementation (exact, wildcard and
//!   exception rules) with eTLD+1 extraction. The paper uses eTLD+1 to keep
//!   link clicks on-site, to split first- from third-party resources, and to
//!   define multi-cloud tenants.
//! * [`resource`] — resource types (image, script, sub_frame, ... — the axes
//!   of Fig 18) and third-party domain categories (ads, trackers, CDN,
//!   analytics, ... — the categories of Fig 9, VirusTotal-style).
//! * [`site`] — websites, pages, embedded resources, internal links and
//!   redirects: what the OpenWPM-style crawler walks.
//! * [`namegen`] — deterministic pronounceable domain-name generation with a
//!   weighted TLD mix, used by the world generator.
//! * [`toplist`] — a Tranco-like ranked top list with Zipf popularity
//!   sampling.
//!
//! This crate is purely structural: *which* names have `AAAA` records lives
//! in the DNS zone built by `worldgen`, not here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod namegen;
pub mod psl;
pub mod resource;
pub mod site;
pub mod toplist;

pub use namegen::NameGenerator;
pub use psl::Psl;
pub use resource::{DomainCategory, ResourceType};
pub use site::{Page, ResourceRef, Website};
pub use toplist::TopList;
