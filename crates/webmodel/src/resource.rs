//! Resource types and third-party domain categories.

use serde::{Deserialize, Serialize};

/// The type of an embedded resource, matching the axes of the paper's
/// Fig 18 heatmap (browser request types as recorded by OpenWPM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceType {
    /// Images (`<img>`, CSS backgrounds) — the most common IPv4-only type.
    Image,
    /// XHR / fetch calls.
    XmlHttpRequest,
    /// Embedded frames.
    SubFrame,
    /// JavaScript.
    Script,
    /// Tracking beacons.
    Beacon,
    /// Audio/video.
    Media,
    /// Web fonts.
    Font,
    /// Stylesheets.
    Stylesheet,
    /// Anything else.
    Other,
}

impl ResourceType {
    /// All types in Fig 18 column order.
    pub fn all() -> [ResourceType; 9] {
        [
            ResourceType::Image,
            ResourceType::XmlHttpRequest,
            ResourceType::SubFrame,
            ResourceType::Script,
            ResourceType::Beacon,
            ResourceType::Media,
            ResourceType::Font,
            ResourceType::Stylesheet,
            ResourceType::Other,
        ]
    }

    /// OpenWPM-style label.
    pub fn label(self) -> &'static str {
        match self {
            ResourceType::Image => "image",
            ResourceType::XmlHttpRequest => "xmlhttprequest",
            ResourceType::SubFrame => "sub_frame",
            ResourceType::Script => "script",
            ResourceType::Beacon => "beacon",
            ResourceType::Media => "media",
            ResourceType::Font => "font",
            ResourceType::Stylesheet => "stylesheet",
            ResourceType::Other => "other",
        }
    }
}

/// VirusTotal-style category of a third-party domain (Fig 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainCategory {
    /// Advertising networks.
    Ads,
    /// "Information technology" (CDN-adjacent infrastructure, APIs).
    InformationTechnology,
    /// User tracking / data brokers.
    Trackers,
    /// Content delivery.
    ContentDelivery,
    /// Analytics platforms.
    Analytics,
    /// Social media widgets.
    SocialMedia,
    /// Web fonts and asset libraries.
    Assets,
    /// Anything else.
    Other,
}

impl DomainCategory {
    /// All categories, Fig 9 order first.
    pub fn all() -> [DomainCategory; 8] {
        [
            DomainCategory::Ads,
            DomainCategory::InformationTechnology,
            DomainCategory::Trackers,
            DomainCategory::ContentDelivery,
            DomainCategory::Analytics,
            DomainCategory::SocialMedia,
            DomainCategory::Assets,
            DomainCategory::Other,
        ]
    }

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            DomainCategory::Ads => "ads",
            DomainCategory::InformationTechnology => "information technology",
            DomainCategory::Trackers => "trackers",
            DomainCategory::ContentDelivery => "content delivery",
            DomainCategory::Analytics => "analytics",
            DomainCategory::SocialMedia => "social media",
            DomainCategory::Assets => "assets",
            DomainCategory::Other => "other",
        }
    }

    /// Typical resource types served by domains of this category, with
    /// relative weights — drives the Fig 18 heatmap shape (ad networks serve
    /// images/sub_frames/scripts; analytics serve scripts/XHR/beacons; ...).
    pub fn resource_profile(self) -> &'static [(ResourceType, f64)] {
        use DomainCategory as C;
        use ResourceType as R;
        match self {
            C::Ads => &[
                (R::Image, 0.35),
                (R::Script, 0.2),
                (R::SubFrame, 0.2),
                (R::XmlHttpRequest, 0.2),
                (R::Media, 0.05),
            ],
            C::InformationTechnology => &[
                (R::XmlHttpRequest, 0.4),
                (R::Script, 0.3),
                (R::Image, 0.2),
                (R::Other, 0.1),
            ],
            C::Trackers => &[
                (R::Image, 0.35),
                (R::XmlHttpRequest, 0.3),
                (R::Script, 0.2),
                (R::Beacon, 0.15),
            ],
            C::ContentDelivery => &[
                (R::Image, 0.4),
                (R::Script, 0.25),
                (R::Stylesheet, 0.15),
                (R::Font, 0.1),
                (R::Media, 0.1),
            ],
            C::Analytics => &[
                (R::Script, 0.4),
                (R::XmlHttpRequest, 0.3),
                (R::Beacon, 0.2),
                (R::Image, 0.1),
            ],
            C::SocialMedia => &[(R::SubFrame, 0.4), (R::Script, 0.3), (R::Image, 0.3)],
            C::Assets => &[(R::Font, 0.4), (R::Script, 0.3), (R::Stylesheet, 0.3)],
            C::Other => &[(R::Image, 0.4), (R::Script, 0.3), (R::XmlHttpRequest, 0.3)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_openwpm_style() {
        assert_eq!(ResourceType::SubFrame.label(), "sub_frame");
        assert_eq!(ResourceType::XmlHttpRequest.label(), "xmlhttprequest");
        assert_eq!(DomainCategory::ContentDelivery.label(), "content delivery");
    }

    #[test]
    fn profiles_are_normalized_distributions() {
        for cat in DomainCategory::all() {
            let total: f64 = cat.resource_profile().iter().map(|(_, w)| w).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{cat:?} profile sums to {total}"
            );
            assert!(!cat.resource_profile().is_empty());
        }
    }

    #[test]
    fn enumerations_complete() {
        assert_eq!(ResourceType::all().len(), 9);
        assert_eq!(DomainCategory::all().len(), 8);
    }
}
