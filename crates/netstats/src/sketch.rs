//! Mergeable log-bucket histogram sketches.
//!
//! The streaming flow pipeline aggregates millions of per-flow durations and
//! sizes without holding the values; a [`LogHistogram`] gives quantiles with
//! bounded *relative* error in O(1) memory. Buckets are geometric: each
//! power-of-two octave is split into [`SUBBUCKETS`] sub-buckets, so any
//! reported quantile is within a factor of `2^(1/8) ≈ 1.09` of the true
//! value — plenty for CDF figures whose axes are log-scaled anyway.
//!
//! Sketches merge exactly (bucket-wise addition), so per-day or per-worker
//! sketches can be combined without error beyond the shared bucketing.

/// Sub-buckets per power-of-two octave (relative error ≈ 2^(1/8) − 1 ≈ 9%).
pub const SUBBUCKETS: usize = 8;

/// Bucket count: one zero bucket + 64 octaves × [`SUBBUCKETS`].
const NUM_BUCKETS: usize = 1 + 64 * SUBBUCKETS;

/// A fixed-footprint histogram over `u64` values with geometric buckets.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Bucket index of a value: 0 for 0, then octave × sub-bucket.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let e = 63 - v.leading_zeros() as usize; // floor(log2 v)
                                             // Top three mantissa bits below the leading one select the sub-bucket;
                                             // values in small octaves (< 8) are scaled up so the mapping stays
                                             // monotone.
    let sub = if e >= 3 {
        ((v >> (e - 3)) & 0x7) as usize
    } else {
        ((v << (3 - e)) & 0x7) as usize
    };
    1 + e * SUBBUCKETS + sub
}

/// Geometric lower/upper bounds of bucket `idx` (idx ≥ 1).
fn bucket_bounds(idx: usize) -> (f64, f64) {
    let i = idx - 1;
    let e = (i / SUBBUCKETS) as i32;
    let sub = (i % SUBBUCKETS) as f64;
    let scale = (e - 3) as f64;
    let lo = (8.0 + sub) * scale.exp2();
    let hi = (9.0 + sub) * scale.exp2();
    (lo, hi)
}

impl LogHistogram {
    /// An empty sketch.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Exact minimum (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile `q ∈ [0, 1]`: the geometric midpoint of the
    /// bucket holding the `⌈q·n⌉`-th smallest value, clamped to the exact
    /// observed min/max. Relative error is bounded by the bucket width
    /// (≈ 9%). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min as f64);
        }
        if q == 1.0 {
            return Some(self.max as f64);
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                if idx == 0 {
                    // The zero bucket only ever holds recorded zeros, so
                    // the observed min is 0 whenever this path is taken —
                    // but clamp anyway so the bucket-0 answer can never
                    // escape the [min, max] envelope every other bucket's
                    // answer is held to.
                    return Some(0.0f64.clamp(self.min as f64, self.max as f64));
                }
                let (lo, hi) = bucket_bounds(idx);
                let mid = (lo * hi).sqrt();
                return Some(mid.clamp(self.min as f64, self.max as f64));
            }
        }
        Some(self.max as f64)
    }

    /// Fold another sketch into this one (exact: bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl PartialEq for LogHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets
            && self.count == other.count
            && self.sum == other.sum
            && (self.count == 0 || (self.min == other.min && self.max == other.max))
    }
}

impl Eq for LogHistogram {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_monotone() {
        let mut last = 0;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of({v}) = {b} < {last}");
            last = b;
        }
        // Spot-check large values stay in range.
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in [1u64, 2, 7, 8, 9, 100, 1_000, 123_456, 1 << 40] {
            let idx = bucket_of(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v as f64 && (v as f64) < hi,
                "{v} not in [{lo}, {hi}) (bucket {idx})"
            );
        }
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).unwrap();
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.10, "q{q}: got {got}, expect {expect} (rel {rel})");
        }
        assert_eq!(h.quantile(0.0).unwrap(), 1.0, "clamped to exact min");
        assert_eq!(h.quantile(1.0).unwrap(), 10_000.0, "clamped to exact max");
        assert_eq!(h.mean(), Some(5_000.5));
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in 0..5_000u64 {
            let x = v.wrapping_mul(2654435761) % 1_000_000;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 5_000);
        assert_eq!(a.quantile(0.5), both.quantile(0.5));
    }

    #[test]
    fn empty_sketch() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn zero_values_count() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.quantile(0.4), Some(0.0));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(8));
    }
}
