//! Two-sided Wilcoxon signed-rank test.
//!
//! §5.2 of the paper compares IPv6 readiness of cloud pairs over their shared
//! multi-cloud tenants with a two-sided Wilcoxon signed-rank test, reporting
//! the signed effect size `r ∈ [-1, 1]` and applying Holm-Bonferroni across
//! the 67 comparable pairs. Cloud-tenant data is full of ties (per-tenant
//! IPv6-full fractions are frequently exactly 0 or 1), so midrank tie
//! handling and the tie-corrected variance matter here, not just textbook
//! formulas.
//!
//! Zero differences are dropped (Wilcoxon's original treatment), matching
//! the paper's requirement that pairs have "at least two shared tenants
//! where the two clouds differ".

/// Result of a two-sided Wilcoxon signed-rank test.
#[derive(Debug, Clone, PartialEq)]
pub struct WilcoxonResult {
    /// Number of non-zero differences actually tested.
    pub n: usize,
    /// Sum of ranks of positive differences.
    pub w_plus: f64,
    /// Sum of ranks of negative differences.
    pub w_minus: f64,
    /// Standardized test statistic (continuity-corrected in the normal
    /// approximation; derived from the exact p-value in the exact branch).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Signed effect size `r = z/√n`, clamped to `[-1, 1]`. Positive means
    /// the first sample tends to exceed the second.
    pub effect_size: f64,
    /// Whether the exact permutation distribution was used (small n, no
    /// ties) rather than the normal approximation.
    pub exact: bool,
}

/// Largest `n` for which the exact null distribution is enumerated.
const EXACT_N_MAX: usize = 25;

/// Run the two-sided Wilcoxon signed-rank test on paired samples.
///
/// Returns `None` when fewer than two non-zero differences remain — the
/// same "not comparable" criterion the paper uses (hatched cells in Fig 12).
///
/// ```
/// use netstats::wilcoxon::wilcoxon_signed_rank;
/// let a = [125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0];
/// let b = [110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0];
/// let r = wilcoxon_signed_rank(&a, &b).unwrap();
/// assert_eq!(r.n, 9); // one zero difference dropped
/// assert!(r.p_value > 0.05); // no significant difference in this classic sample
/// ```
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Option<WilcoxonResult> {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            assert!(!x.is_nan() && !y.is_nan(), "NaN in Wilcoxon input");
            x - y
        })
        .filter(|d| *d != 0.0)
        .collect();
    wilcoxon_on_diffs(&diffs)
}

/// Run the test directly on a sequence of (already non-zero filtered or not)
/// differences. Zeros are dropped here too.
pub fn wilcoxon_on_diffs(diffs: &[f64]) -> Option<WilcoxonResult> {
    let diffs: Vec<f64> = diffs.iter().copied().filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n < 2 {
        return None;
    }

    // Midranks over |d|.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .expect("no NaN here")
    });
    let mut ranks = vec![0.0f64; n];
    let mut tie_groups: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[idx[j + 1]].abs() == diffs[idx[i]].abs() {
            j += 1;
        }
        let midrank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        tie_groups.push(j - i + 1);
        i = j + 1;
    }

    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    let w_minus = total - w_plus;

    let has_ties = tie_groups.iter().any(|&t| t > 1);
    let (p_value, z, exact) = if n <= EXACT_N_MAX && !has_ties {
        let p = exact_two_sided_p(n, w_plus.min(w_minus));
        // Back out a z-score from the exact p so effect sizes stay
        // comparable across the exact and approximate branches.
        let z_mag = inverse_normal_upper(p / 2.0);
        let sign = if w_plus >= w_minus { 1.0 } else { -1.0 };
        (p, sign * z_mag, true)
    } else {
        let mean = total / 2.0;
        let nf = n as f64;
        let tie_term: f64 = tie_groups
            .iter()
            .map(|&t| {
                let t = t as f64;
                t * t * t - t
            })
            .sum::<f64>()
            / 48.0;
        let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term;
        if var <= 0.0 {
            // All differences identical in magnitude and sign-balanced in a
            // degenerate way; report no evidence.
            return Some(WilcoxonResult {
                n,
                w_plus,
                w_minus,
                z: 0.0,
                p_value: 1.0,
                effect_size: 0.0,
                exact: false,
            });
        }
        let sd = var.sqrt();
        // Continuity correction towards the mean.
        let delta = w_plus - mean;
        let cc = if delta > 0.0 {
            -0.5
        } else if delta < 0.0 {
            0.5
        } else {
            0.0
        };
        let z = (delta + cc) / sd;
        let p = (2.0 * normal_sf(z.abs())).min(1.0);
        (p, z, false)
    };

    let effect_size = (z / (n as f64).sqrt()).clamp(-1.0, 1.0);
    Some(WilcoxonResult {
        n,
        w_plus,
        w_minus,
        z,
        p_value,
        effect_size,
        exact,
    })
}

/// Exact two-sided p-value: `P(min(W+, W-) <= w_obs)` under the null, via
/// the standard subset-sum count over ranks `1..=n`.
fn exact_two_sided_p(n: usize, w_small: f64) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[w] = number of subsets of {1..n} with rank sum w.
    let mut counts = vec![0f64; max_sum + 1];
    counts[0] = 1.0;
    for r in 1..=n {
        for w in (r..=max_sum).rev() {
            counts[w] += counts[w - r];
        }
    }
    let total: f64 = 2f64.powi(n as i32);
    let w_obs = w_small.floor() as usize; // no ties => integer ranks
    let tail: f64 = counts[..=w_obs.min(max_sum)].iter().sum();
    // Two-sided: double the smaller tail (distribution is symmetric).
    (2.0 * tail / total).min(1.0)
}

/// Standard normal survival function `P(Z > z)` via `erfc`.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes rational approximation,
/// |error| < 1.2e-7 — plenty for p-values used at α = 0.05).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Inverse of the standard normal upper tail: find `z` with `P(Z > z) = p`.
/// Bisection on the monotone survival function; `p` clamped away from 0/1.
fn inverse_normal_upper(p: f64) -> f64 {
    let p = p.clamp(1e-300, 1.0 - 1e-12);
    if p >= 0.5 {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_sf(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_textbook_sample() {
        let a = [
            125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0,
        ];
        let b = [
            110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0,
        ];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(r.n, 9);
        assert!((r.w_plus - 27.0).abs() < 1e-9);
        assert!((r.w_minus - 18.0).abs() < 1e-9);
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
        assert!(r.effect_size > 0.0);
    }

    #[test]
    fn all_positive_differences_are_significant() {
        let a: Vec<f64> = (1..=12).map(|i| 2.0 * i as f64).collect();
        let b: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.exact);
        // Exact two-sided p = 2 / 2^12.
        assert!((r.p_value - 2.0 / 4096.0).abs() < 1e-12, "p={}", r.p_value);
        assert!(r.effect_size > 0.8);
    }

    #[test]
    fn sign_flip_negates_effect() {
        let a = [5.0, 7.0, 9.0, 11.0, 6.0, 8.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r1 = wilcoxon_signed_rank(&a, &b).unwrap();
        let r2 = wilcoxon_signed_rank(&b, &a).unwrap();
        assert!((r1.effect_size + r2.effect_size).abs() < 1e-9);
        assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        assert_eq!(r1.w_plus, r2.w_minus);
    }

    #[test]
    fn zeros_are_dropped_and_small_n_is_none() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0];
        assert!(wilcoxon_signed_rank(&a, &b).is_none());
        let c = [1.0, 2.0, 4.0];
        assert!(wilcoxon_signed_rank(&a, &c).is_none(), "only one non-zero");
    }

    #[test]
    fn heavy_ties_use_normal_approximation() {
        // Cloud-style data: fractions that are mostly 0 or 1.
        let a: Vec<f64> = (0..40)
            .map(|i| if i % 3 == 0 { 0.0 } else { 1.0 })
            .collect();
        let b: Vec<f64> = (0..40).map(|_| 0.0).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(!r.exact);
        assert!(r.p_value < 0.001);
        assert!(r.effect_size > 0.5);
    }

    #[test]
    fn symmetric_sample_has_no_effect() {
        let a = [1.0, -1.0, 2.0, -2.0, 3.0, -3.0, 4.0, -4.0];
        let r = wilcoxon_on_diffs(&a).unwrap();
        assert!((r.w_plus - r.w_minus).abs() < 1e-9);
        assert!(r.p_value > 0.9);
        assert_eq!(r.effect_size, 0.0);
    }

    #[test]
    fn normal_sf_sanity() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.959964) - 0.025).abs() < 1e-5);
        assert!((normal_sf(-1.959964) - 0.975).abs() < 1e-5);
    }

    #[test]
    fn inverse_normal_roundtrip() {
        for p in [0.4, 0.1, 0.025, 0.001, 1e-6] {
            let z = inverse_normal_upper(p);
            assert!((normal_sf(z) - p).abs() / p < 1e-3, "p={p} z={z}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]);
    }
}
