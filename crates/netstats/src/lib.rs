//! # netstats — statistics for measurement studies
//!
//! The statistical toolkit behind the `ipv6view` analyses:
//!
//! * [`desc`] — descriptive statistics: mean/standard deviation, type-7
//!   quantiles, five-number summaries, and empirical CDFs ([`desc::Ecdf`])
//!   used by every CDF figure in the paper (Fig 1, 3, 7, 8, 10, 16).
//! * [`boxplot`] — Tukey boxplot statistics (IQR box, 1.5×IQR whiskers,
//!   outliers) for the per-AS and per-domain figures (Fig 4, 17).
//! * [`wilcoxon`] — the two-sided Wilcoxon signed-rank test with midrank tie
//!   handling, exact small-sample distribution, normal approximation with
//!   tie correction, and the signed effect size `r = z/√n` used by the cloud
//!   pairwise comparison heatmap (Fig 12).
//! * [`holm`] — Holm-Bonferroni step-down correction for families of
//!   hypotheses (Fig 12 applies it at α = 0.05).
//! * [`corr`] — Pearson and Spearman correlation (§5's "ease of enabling
//!   IPv6 is correlated with tenant adoption" claim).
//! * [`sketch`] — mergeable log-bucket histograms ([`sketch::LogHistogram`])
//!   for the streaming flow pipeline: per-flow duration/size distributions
//!   in O(1) memory with ≈9% relative quantile error.
//!
//! All functions are pure and deterministic; `NaN` inputs are rejected
//! explicitly rather than silently propagated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxplot;
pub mod corr;
pub mod desc;
pub mod holm;
pub mod sketch;
pub mod wilcoxon;

pub use boxplot::BoxplotStats;
pub use corr::{pearson, spearman};
pub use desc::{mean, quantile, sample_std, Ecdf, Summary};
pub use holm::{holm_bonferroni, HolmOutcome};
pub use sketch::LogHistogram;
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonResult};
