//! Tukey boxplot statistics.
//!
//! Figures 4 and 17 of the paper draw box-and-whisker plots: boxes span the
//! interquartile range, whiskers extend to the most extreme observation
//! within 1.5×IQR of the box, and everything beyond is an outlier dot.

use crate::desc::quantile_sorted;

/// The numbers a Tukey boxplot is drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotStats {
    /// Number of observations.
    pub n: usize,
    /// First quartile (25th percentile, type-7).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile, type-7).
    pub q3: f64,
    /// Lower whisker: smallest observation `>= q1 - 1.5*IQR`.
    pub whisker_low: f64,
    /// Upper whisker: largest observation `<= q3 + 1.5*IQR`.
    pub whisker_high: f64,
    /// Observations outside the whiskers, ascending.
    pub outliers: Vec<f64>,
}

impl BoxplotStats {
    /// Compute boxplot statistics; `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<BoxplotStats> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_low = *sorted
            .iter()
            .find(|&&x| x >= lo_fence)
            .expect("q1 is within fences");
        let whisker_high = *sorted
            .iter()
            .rev()
            .find(|&&x| x <= hi_fence)
            .expect("q3 is within fences");
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        Some(BoxplotStats {
            n: sorted.len(),
            q1,
            median,
            q3,
            whisker_low,
            whisker_high,
            outliers,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Render a one-line ASCII boxplot over `[lo, hi]` with `width` cells —
    /// used by the experiment binaries to print Fig 4/17 style panels.
    pub fn ascii(&self, lo: f64, hi: f64, width: usize) -> String {
        assert!(hi > lo && width >= 10);
        let scale = |x: f64| -> usize {
            let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
            ((t * (width - 1) as f64).round()) as usize
        };
        let mut row = vec![' '; width];
        let (w0, q1, md, q3, w1) = (
            scale(self.whisker_low),
            scale(self.q1),
            scale(self.median),
            scale(self.q3),
            scale(self.whisker_high),
        );
        for cell in row.iter_mut().take(q1).skip(w0) {
            *cell = '-';
        }
        for cell in row.iter_mut().take(w1 + 1).skip(q3) {
            *cell = '-';
        }
        for cell in row.iter_mut().take(q3 + 1).skip(q1) {
            *cell = '=';
        }
        row[md] = '|';
        for &o in &self.outliers {
            let i = scale(o);
            if row[i] == ' ' {
                row[i] = 'o';
            }
        }
        row.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_outliers() {
        let b = BoxplotStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.whisker_low, 1.0);
        assert_eq!(b.whisker_high, 5.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.iqr(), 2.0);
    }

    #[test]
    fn detects_outliers() {
        let b = BoxplotStats::of(&[1.0, 2.0, 2.5, 3.0, 3.5, 4.0, 100.0]).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_high <= 4.0 + 1.5 * b.iqr());
    }

    #[test]
    fn singleton_degenerates_gracefully() {
        let b = BoxplotStats::of(&[7.0]).unwrap();
        assert_eq!(b.q1, 7.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.whisker_low, 7.0);
        assert_eq!(b.whisker_high, 7.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn empty_is_none() {
        assert!(BoxplotStats::of(&[]).is_none());
    }

    #[test]
    fn ascii_renders_within_width() {
        let b = BoxplotStats::of(&[0.1, 0.2, 0.3, 0.4, 0.9]).unwrap();
        let s = b.ascii(0.0, 1.0, 40);
        assert_eq!(s.chars().count(), 40);
        assert!(s.contains('|'));
        assert!(s.contains('='));
    }
}
