//! Pearson and Spearman correlation.
//!
//! §5 of the paper observes that *"ease of enabling IPv6 in the cloud is
//! correlated with tenant IPv6 adoption rates"*. The ablation experiments
//! quantify that with Spearman's rank correlation between a provider's
//! policy ease score and its measured tenant adoption.

/// Pearson product-moment correlation. `None` if fewer than two pairs or a
/// zero-variance input.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "paired samples must have equal length");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        assert!(!x.is_nan() && !y.is_nan(), "NaN in correlation input");
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation with midrank tie handling.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "paired samples must have equal length");
    let rx = midranks(xs);
    let ry = midranks(ys);
    pearson(&rx, &ry)
}

/// Assign 1-based midranks to a sample (ties share the average rank).
pub fn midranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let midrank = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_inverse() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [9.0, 5.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_spearman_perfect() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        let p = pearson(&xs, &ys).unwrap();
        let s = spearman(&xs, &ys).unwrap();
        assert!(p < 1.0);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_none() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn midranks_with_ties() {
        let r = midranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_known_value() {
        // IQ vs hours of TV (Wikipedia's worked Spearman example, rho ≈ -0.1757).
        let iq = [
            106.0, 100.0, 86.0, 101.0, 99.0, 103.0, 97.0, 113.0, 112.0, 110.0,
        ];
        let tv = [7.0, 27.0, 2.0, 50.0, 28.0, 29.0, 20.0, 12.0, 6.0, 17.0];
        let s = spearman(&iq, &tv).unwrap();
        assert!((s - (-29.0 / 165.0)).abs() < 1e-9, "rho = {s}");
    }
}
