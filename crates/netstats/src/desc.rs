//! Descriptive statistics and empirical CDFs.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (n-1 denominator). Returns `None` when fewer
/// than two observations are available.
pub fn sample_std(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Some((ss / (xs.len() - 1) as f64).sqrt())
}

/// Type-7 (linear interpolation) quantile of *unsorted* data, the default of
/// R and NumPy. `q` must be in `[0, 1]`. Returns `None` for empty input.
///
/// ```
/// use netstats::desc::quantile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Type-7 quantile of data already sorted ascending.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (type-7).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (type-7).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for empty input.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Some(Summary {
            n: sorted.len(),
            mean: mean(&sorted).expect("non-empty"),
            std: sample_std(&sorted).unwrap_or(0.0),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// An empirical cumulative distribution function.
///
/// Construction sorts the sample once; evaluation is `O(log n)`. The
/// `points` iterator yields the staircase in plot-ready form, which is how
/// the experiment binaries emit every CDF figure.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (NaN values are rejected with a panic — they
    /// indicate a bug upstream, not a property of the data).
    pub fn new(mut xs: Vec<f64>) -> Ecdf {
        assert!(
            xs.iter().all(|x| !x.is_nan()),
            "NaN fed to Ecdf — upstream bug"
        );
        xs.sort_by(|a, b| a.partial_cmp(b).expect("checked non-NaN"));
        Ecdf { sorted: xs }
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample was empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of observations `<= x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile function), type-7 interpolation.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(quantile_sorted(&self.sorted, q))
        }
    }

    /// The sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Plot-ready `(x, F(x))` staircase points, one per observation.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }

    /// Downsample the staircase to at most `k` evenly spaced points
    /// (always including the last), for compact textual figures.
    pub fn sampled_points(&self, k: usize) -> Vec<(f64, f64)> {
        let pts: Vec<(f64, f64)> = self.points().collect();
        if pts.len() <= k || k == 0 {
            return pts;
        }
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let idx = i * (pts.len() - 1) / (k - 1);
            out.push(pts[idx]);
        }
        out.dedup_by(|a, b| a == b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(sample_std(&[1.0]), None);
        let s = sample_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn quantiles_match_r_type7() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.5), Some(35.0));
        // R: quantile(c(15,20,35,40,50), .25, type=7) == 20
        assert_eq!(quantile(&xs, 0.25), Some(20.0));
        // R: quantile(..., .4, type=7) == 29
        assert!((quantile(&xs, 0.4).unwrap() - 29.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_singleton_and_bounds() {
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_bad_q() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        assert!(Summary::of(&[]).is_none());
        let single = Summary::of(&[9.0]).unwrap();
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn ecdf_step_function() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.n(), 4);
        assert_eq!(e.fraction_at(0.5), 0.0);
        assert_eq!(e.fraction_at(1.0), 0.25);
        assert_eq!(e.fraction_at(2.0), 0.75);
        assert_eq!(e.fraction_at(2.5), 0.75);
        assert_eq!(e.fraction_at(10.0), 1.0);
    }

    #[test]
    fn ecdf_quantile_and_points() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.quantile(0.5), Some(2.0));
        let pts: Vec<_> = e.points().collect();
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_at(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
    }

    #[test]
    fn ecdf_sampling() {
        let e = Ecdf::new((0..100).map(|i| i as f64).collect());
        let pts = e.sampled_points(5);
        assert!(pts.len() <= 5);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}
