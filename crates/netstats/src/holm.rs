//! Holm-Bonferroni step-down correction for multiple comparisons.
//!
//! Fig 12 of the paper tests 67 cloud pairs simultaneously and controls the
//! family-wise error rate at α = 0.05 with Holm's sequentially rejective
//! procedure (Holm, 1979).

/// Outcome of the Holm-Bonferroni procedure for one hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HolmOutcome {
    /// The raw p-value as supplied.
    pub p_raw: f64,
    /// The Holm-adjusted p-value (monotone, capped at 1).
    pub p_adjusted: f64,
    /// Whether the hypothesis is rejected at the supplied α.
    pub reject: bool,
}

/// Apply Holm-Bonferroni to a family of raw p-values at significance `alpha`.
/// Results are returned in the *input order*.
///
/// ```
/// use netstats::holm::holm_bonferroni;
/// let out = holm_bonferroni(&[0.01, 0.04, 0.03, 0.005], 0.05);
/// assert!(out[3].reject); // smallest p, compared against alpha/4
/// assert!(!out[1].reject); // 0.04 fails after the step-down
/// ```
///
/// # Panics
/// Panics on NaN p-values or values outside `[0, 1]`.
pub fn holm_bonferroni(p_values: &[f64], alpha: f64) -> Vec<HolmOutcome> {
    for &p in p_values {
        assert!(
            (0.0..=1.0).contains(&p),
            "p-value {p} outside [0,1] (or NaN)"
        );
    }
    let m = p_values.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| p_values[i].partial_cmp(&p_values[j]).expect("checked"));

    let mut out = vec![
        HolmOutcome {
            p_raw: 0.0,
            p_adjusted: 0.0,
            reject: false,
        };
        m
    ];
    let mut running_max = 0.0f64;
    let mut blocked = false;
    for (rank, &i) in order.iter().enumerate() {
        let adj = ((m - rank) as f64 * p_values[i]).min(1.0);
        running_max = running_max.max(adj);
        // Step-down: once one hypothesis fails, all later (larger-p) ones fail.
        let reject_here = !blocked && p_values[i] <= alpha / (m - rank) as f64;
        if !reject_here {
            blocked = true;
        }
        out[i] = HolmOutcome {
            p_raw: p_values[i],
            p_adjusted: running_max,
            reject: reject_here,
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // Classic example: p = [0.01, 0.04, 0.03, 0.005], m=4, alpha=0.05.
        // Sorted: 0.005 (<= .05/4 = .0125 ok), 0.01 (<= .05/3 = .0167 ok),
        //         0.03 (<= .05/2 = .025 FAIL), 0.04 blocked.
        let out = holm_bonferroni(&[0.01, 0.04, 0.03, 0.005], 0.05);
        assert!(out[0].reject);
        assert!(!out[1].reject);
        assert!(!out[2].reject);
        assert!(out[3].reject);
    }

    #[test]
    fn adjusted_p_values_monotone() {
        let ps = [0.001, 0.008, 0.039, 0.041, 0.042, 0.06];
        let out = holm_bonferroni(&ps, 0.05);
        // Adjusted values in sorted-p order must be non-decreasing.
        let mut sorted: Vec<_> = out.iter().map(|o| (o.p_raw, o.p_adjusted)).collect();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in sorted.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // reject iff adjusted <= alpha for Holm (equivalent formulations).
        for o in &out {
            assert_eq!(o.reject, o.p_adjusted <= 0.05, "{o:?}");
        }
    }

    #[test]
    fn empty_family() {
        assert!(holm_bonferroni(&[], 0.05).is_empty());
    }

    #[test]
    fn single_hypothesis_is_plain_test() {
        let out = holm_bonferroni(&[0.04], 0.05);
        assert!(out[0].reject);
        assert_eq!(out[0].p_adjusted, 0.04);
    }

    #[test]
    fn all_significant() {
        let out = holm_bonferroni(&[1e-5, 1e-6, 1e-7], 0.05);
        assert!(out.iter().all(|o| o.reject));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_p() {
        let _ = holm_bonferroni(&[1.2], 0.05);
    }
}
