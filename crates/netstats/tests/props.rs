//! Property-based tests for netstats.

use netstats::corr::{midranks, spearman};
use netstats::desc::{quantile, Ecdf};
use netstats::holm::holm_bonferroni;
use netstats::wilcoxon::wilcoxon_on_diffs;
use netstats::{BoxplotStats, LogHistogram};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantile_monotone(xs in finite_vec(60), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    /// The ECDF is a valid distribution function: monotone, 0 below min,
    /// 1 at and above max, and quantile() inverts it approximately.
    #[test]
    fn ecdf_is_distribution(xs in finite_vec(60)) {
        let e = Ecdf::new(xs.clone());
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(e.fraction_at(min - 1.0), 0.0);
        prop_assert_eq!(e.fraction_at(max), 1.0);
        let mut prev = 0.0;
        for (_, f) in e.points() {
            prop_assert!(f >= prev);
            prev = f;
        }
    }

    /// Boxplot invariants: quartiles ordered, whiskers within the fences and
    /// the data range, outliers strictly outside the whiskers. (Note the
    /// lower whisker may legitimately exceed Q1 when no observation falls
    /// between the fence and Q1 — Tukey's rule, same as matplotlib.)
    #[test]
    fn boxplot_invariants(xs in finite_vec(60)) {
        let b = BoxplotStats::of(&xs).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.whisker_low >= min - 1e-9);
        prop_assert!(b.whisker_high <= max + 1e-9);
        prop_assert!(b.whisker_low >= b.q1 - 1.5 * b.iqr() - 1e-9);
        prop_assert!(b.whisker_high <= b.q3 + 1.5 * b.iqr() + 1e-9);
        for &o in &b.outliers {
            prop_assert!(o < b.whisker_low || o > b.whisker_high);
        }
        prop_assert_eq!(b.n, xs.len());
    }

    /// Wilcoxon: flipping the sign of every difference negates the effect and
    /// keeps the p-value identical.
    #[test]
    fn wilcoxon_sign_symmetry(diffs in proptest::collection::vec(-100f64..100.0, 2..40)) {
        let flipped: Vec<f64> = diffs.iter().map(|d| -d).collect();
        match (wilcoxon_on_diffs(&diffs), wilcoxon_on_diffs(&flipped)) {
            (Some(a), Some(b)) => {
                prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
                prop_assert!((a.effect_size + b.effect_size).abs() < 1e-9);
            }
            (None, None) => {}
            _ => prop_assert!(false, "one side degenerate, the other not"),
        }
    }

    /// Wilcoxon p-values live in (0, 1] and effect sizes in [-1, 1].
    #[test]
    fn wilcoxon_ranges(diffs in proptest::collection::vec(-100f64..100.0, 2..60)) {
        if let Some(r) = wilcoxon_on_diffs(&diffs) {
            prop_assert!(r.p_value > 0.0 && r.p_value <= 1.0, "p={}", r.p_value);
            prop_assert!((-1.0..=1.0).contains(&r.effect_size));
            let total = r.n as f64 * (r.n as f64 + 1.0) / 2.0;
            prop_assert!((r.w_plus + r.w_minus - total).abs() < 1e-6);
        }
    }

    /// Holm: rejections form a prefix of the sorted-p order, and every
    /// rejected p is also rejected by plain Bonferroni at the same alpha
    /// only if Bonferroni rejects fewer or equal hypotheses.
    #[test]
    fn holm_dominates_bonferroni(ps in proptest::collection::vec(0.0f64..=1.0, 1..30)) {
        let alpha = 0.05;
        let holm = holm_bonferroni(&ps, alpha);
        let m = ps.len() as f64;
        for (i, o) in holm.iter().enumerate() {
            // Bonferroni rejection implies Holm rejection.
            if ps[i] <= alpha / m {
                prop_assert!(o.reject, "Bonferroni rejected but Holm did not");
            }
            prop_assert!((0.0..=1.0).contains(&o.p_adjusted));
        }
    }

    /// `LogHistogram::merge` with an empty operand is the identity — in
    /// *both* orders. The empty sketch's sentinels (`min = u64::MAX`,
    /// `max = 0`) must never leak into the merged min/max, and an empty
    /// accumulator absorbing a filled sketch must adopt its stats exactly.
    #[test]
    fn loghistogram_merge_with_empty_is_identity(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let mut filled = LogHistogram::new();
        for &v in &values {
            filled.record(v);
        }
        let (min, max) = (filled.min(), filled.max());
        // nonempty ⊕ empty: untouched.
        let mut a = filled.clone();
        a.merge(&LogHistogram::new());
        prop_assert_eq!(&a, &filled);
        prop_assert_eq!(a.min(), min);
        prop_assert_eq!(a.max(), max);
        prop_assert_eq!(a.quantile(0.5), filled.quantile(0.5));
        // empty ⊕ nonempty: adopts the filled stats.
        let mut b = LogHistogram::new();
        b.merge(&filled);
        prop_assert_eq!(&b, &filled);
        prop_assert_eq!(b.min(), min);
        prop_assert_eq!(b.max(), max);
        // empty ⊕ empty stays empty (and keeps reporting None).
        let mut e = LogHistogram::new();
        e.merge(&LogHistogram::new());
        prop_assert_eq!(e.count(), 0);
        prop_assert_eq!(e.min(), None);
        prop_assert_eq!(e.max(), None);
        prop_assert_eq!(e.quantile(0.5), None);
    }

    /// Every `LogHistogram` quantile — including the zero-bucket path — is
    /// clamped to the exact observed [min, max] and is monotone in q.
    #[test]
    fn loghistogram_quantiles_bounded_and_monotone(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let (min, max) = (h.min().unwrap() as f64, h.max().unwrap() as f64);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = h.quantile(lo).unwrap();
        let b = h.quantile(hi).unwrap();
        prop_assert!(a <= b, "quantile not monotone: q{lo}={a} > q{hi}={b}");
        prop_assert!((min..=max).contains(&a), "{a} outside [{min}, {max}]");
        prop_assert!((min..=max).contains(&b), "{b} outside [{min}, {max}]");
    }

    /// Midranks are a permutation-with-ties of 1..=n (they sum to n(n+1)/2).
    #[test]
    fn midrank_sum(xs in finite_vec(50)) {
        let r = midranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Spearman is invariant under strictly monotone transforms of either
    /// variable.
    #[test]
    fn spearman_monotone_invariance(pairs in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..40)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let xt: Vec<f64> = xs.iter().map(|x| x.exp().min(1e300)).collect();
        match (spearman(&xs, &ys), spearman(&xt, &ys)) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (None, None) => {}
            _ => prop_assert!(false, "transform changed degeneracy"),
        }
    }
}
