//! Deterministic fan-out over scoped worker threads.
//!
//! Every parallel axis of the suite — residences, days inside a residence,
//! ISPs in a provider sweep — uses this one primitive instead of growing
//! per-call-site thread pools. The determinism contract is the caller's:
//! `f` must derive all randomness from its index argument alone, so the
//! result vector is byte-identical at any thread count.

/// Fan `items` out over up to `threads` scoped workers, returning results
/// in input order. Assignment is round-robin (item `i` on worker
/// `i % threads`) so heavy items spread; `threads <= 1` runs inline.
/// Thread-count invariance is the *caller's* contract: `f` must derive all
/// randomness from its index argument alone — every call site (residences,
/// days, ISPs) seeds its RNG from exactly that.
pub fn fan_out<T: Send, R: Send>(
    items: Vec<T>,
    threads: usize,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let mut per_worker: Vec<Vec<(usize, T, &mut Option<R>)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (i, (x, slot)) in items.into_iter().zip(slots.iter_mut()).enumerate() {
        per_worker[i % threads].push((i, x, slot));
    }
    let f = &f;
    // Telemetry spans opened inside `f` must nest under the caller's span
    // path, not start fresh per worker thread — otherwise the set of span
    // paths (and per-path counts) would depend on the thread layout.
    let span_parent = obs::current_span_path();
    let span_parent = &span_parent;
    std::thread::scope(|scope| {
        for batch in per_worker {
            scope.spawn(move || {
                let _span_path = obs::enter_path(span_parent);
                for (i, x, slot) in batch {
                    *slot = Some(f(i, x));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 3, 7, 64] {
            let out = fan_out((0..50).collect(), threads, |i, x: i32| (i, x * 2));
            assert_eq!(out.len(), 50);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*doubled, i as i32 * 2);
            }
        }
    }

    #[test]
    fn empty_and_oversubscribed() {
        let out: Vec<u32> = fan_out(Vec::<u32>::new(), 8, |_, x| x);
        assert!(out.is_empty());
        let out = fan_out(vec![42], 8, |i, x: u32| x + i as u32);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn identical_at_any_thread_count() {
        let work = |i: usize, seed: u64| -> u64 {
            // All "randomness" derives from the index — the contract.
            let mut h = seed.wrapping_add(i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            h ^= h >> 31;
            h
        };
        let items: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let seq = fan_out(items.clone(), 1, work);
        for threads in [2, 5, 16] {
            assert_eq!(fan_out(items.clone(), threads, work), seq);
        }
    }
}
