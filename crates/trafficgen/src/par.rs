//! Deterministic fan-out over scoped worker threads.
//!
//! Every parallel axis of the suite — residences, days inside a residence,
//! ISPs in a provider sweep, subscriber shards — uses this one primitive
//! instead of growing per-call-site thread pools. The determinism contract
//! is the caller's: `f` must derive all randomness from its index argument
//! alone, so the result vector is byte-identical at any thread count.
//!
//! Scheduling is **work-stealing**: workers claim task indices from one
//! shared atomic counter over the canonical task list, so a worker that
//! drew cheap items keeps pulling instead of idling the way the old static
//! round-robin split did. Completion order varies run to run; the *output*
//! does not — results land in input-order slots, and the caller's
//! index-derived seeding makes each result independent of which worker
//! computed it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fan `items` out over up to `threads` scoped workers, returning results
/// in input order. Workers claim the next unstarted index from a shared
/// atomic queue (work-stealing); `threads <= 1` runs inline.
/// Thread-count invariance is the *caller's* contract: `f` must derive all
/// randomness from its index argument alone — every call site (residences,
/// days, ISPs, shards) seeds its RNG from exactly that.
pub fn fan_out<T: Send, R: Send>(
    items: Vec<T>,
    threads: usize,
    f: impl Fn(usize, T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let n = items.len();
    // The task queue: each slot holds one input item; the atomic cursor is
    // the next unclaimed index. `Mutex<Option<T>>` hands the item to exactly
    // one worker without unsafe code; the lock is uncontended by construction
    // (an index is claimed once) so the cost is one CAS per task.
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let next = AtomicUsize::new(0);
    let tasks = &tasks;
    let next = &next;
    let f = &f;
    // Telemetry spans opened inside `f` must nest under the caller's span
    // path, not start fresh per worker thread — otherwise the set of span
    // paths (and per-path counts) would depend on the thread layout.
    let span_parent = obs::current_span_path();
    let span_parent = &span_parent;
    let mut results: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    let _span_path = obs::enter_path(span_parent);
                    let mut done: Vec<(usize, R)> = Vec::with_capacity(n / threads + 1);
                    // Tasks a static split would have given other workers.
                    // Diagnostic only: steal counts are scheduling-dependent,
                    // so they go to the debug log, never into `obs` metrics
                    // (the metrics fingerprint is layout-invariant by test).
                    let mut stolen = 0usize;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let Some(x) = tasks[i].lock().ok().and_then(|mut slot| slot.take())
                        else {
                            continue;
                        };
                        if i % threads != worker {
                            stolen += 1;
                        }
                        done.push((i, f(i, x)));
                    }
                    obs::debug!(
                        "fan_out worker {worker}/{threads}: {} tasks ({stolen} stolen vs static split)",
                        done.len()
                    );
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(done) => done,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    // Scatter the per-worker completions back into input order.
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(n, || None);
    for (i, r) in results.drain(..).flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 3, 7, 64] {
            let out = fan_out((0..50).collect(), threads, |i, x: i32| (i, x * 2));
            assert_eq!(out.len(), 50);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*doubled, i as i32 * 2);
            }
        }
    }

    #[test]
    fn empty_and_oversubscribed() {
        let out: Vec<u32> = fan_out(Vec::<u32>::new(), 8, |_, x| x);
        assert!(out.is_empty());
        let out = fan_out(vec![42], 8, |i, x: u32| x + i as u32);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn identical_at_any_thread_count() {
        let work = |i: usize, seed: u64| -> u64 {
            // All "randomness" derives from the index — the contract.
            let mut h = seed.wrapping_add(i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            h ^= h >> 31;
            h
        };
        let items: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let seq = fan_out(items.clone(), 1, work);
        for threads in [2, 5, 16] {
            assert_eq!(fan_out(items.clone(), threads, work), seq);
        }
    }

    #[test]
    fn uneven_task_costs_still_order_correctly() {
        // Heavily skewed costs exercise actual stealing: worker 0's static
        // share would be the slow half. Output must stay input-ordered.
        let out = fan_out((0..40).collect(), 4, |i, x: u64| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * 10
        });
        assert_eq!(out, (0..40).map(|x| x * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            fan_out((0..8).collect(), 3, |i, _x: u32| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
