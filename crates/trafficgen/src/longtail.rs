//! Streaming traffic synthesis over the long-tail AS population: the
//! producer behind the `repro as-fractions` experiment.
//!
//! Unlike residence synthesis — five rich behavioural profiles over ~40
//! head ASes — the long-tail generator models an aggregation-point view of
//! traffic towards a routing-table-scale AS population
//! ([`worldgen::longtail::LongTail`], typically ~100k ASes): each record
//! picks a destination AS Zipf-weighted, a prefix and host inside that
//! AS's announced space, a family split by the AS's IPv6 share (with
//! per-day jitter, so daily fractions move like the paper's Fig 1), and a
//! lognormal size. Records are pushed straight into the caller's
//! [`FlowSink`] — with a dense per-AS aggregator the whole run holds
//! O(ASes) state however many days are simulated, which is the experiment's
//! memory contract.
//!
//! The determinism contract matches residence synthesis: every day derives
//! its own RNG from `(seed, day)` and is emitted in ascending day order, so
//! output is byte-identical at any `threads` count (day workers buffer and
//! flush in order, exactly like [`crate::synth`]'s day fan-out).

use crate::par::fan_out;
use crate::synth::SportAlloc;
use flowmon::sink::{CollectSink, FlowSink};
use flowmon::{FlowKey, FlowRecord, Scope};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::IpAddr;
use worldgen::World;

const HOUR_US: u64 = 3_600_000_000;
const DAY_US: u64 = 24 * HOUR_US;

/// Configuration of a long-tail synthesis run.
#[derive(Debug, Clone)]
pub struct LongTailTrafficConfig {
    /// Master seed (per-day RNGs derive from it).
    pub seed: u64,
    /// Days to simulate. Peak memory is independent of this: day workers
    /// buffer at most one chunk of days, aggregators hold O(ASes).
    pub num_days: u32,
    /// Flow records per simulated day.
    pub flows_per_day: usize,
    /// Day-level worker threads (1 = sequential; output identical at any
    /// count).
    pub threads: usize,
}

impl Default for LongTailTrafficConfig {
    fn default() -> Self {
        LongTailTrafficConfig {
            seed: 0x0100_7a11_a5e5,
            num_days: 3,
            flows_per_day: 200_000,
            threads: 1,
        }
    }
}

/// Synthesize one day of long-tail traffic into `sink`. Pure function of
/// `(config.seed, day)` plus the world.
fn synthesize_day<S: FlowSink>(
    world: &World,
    config: &LongTailTrafficConfig,
    day: u32,
    sink: &mut S,
) {
    let tail = &world.long_tail;
    assert!(!tail.is_empty(), "long-tail synthesis needs a tailed world");
    let mut rng = SmallRng::seed_from_u64(
        config
            .seed
            .wrapping_add((day as u64 + 1).wrapping_mul(0xa076_1d64_78bd_642f)),
    );
    let day_base = day as u64 * DAY_US;
    let mut sports = SportAlloc::new(10_000, day_base);
    // Aggregation-point source addresses (the monitor sits upstream of the
    // access network, so source identity is collapsed — the analyses only
    // read destination attribution and family).
    let src4: IpAddr = "100.64.255.1".parse().expect("static");
    let src6: IpAddr = "2a00:ffff::1".parse().expect("static");
    // Per-day IPv6 mood: a mild global multiplier so daily per-AS
    // fractions vary day to day without drifting the long-run mean.
    let day_jitter = 0.85 + 0.3 * rng.gen::<f64>();
    // Hour-by-hour emission (like residence synthesis): flow starts are
    // then near-monotone, which keeps the port allocator's skip-scan O(1)
    // — uniform starts across the whole day would make every early-morning
    // allocation scan past the previous lap's still-busy horizons.
    let per_hour = config.flows_per_day / 24;
    let remainder = config.flows_per_day % 24;
    // One hour of records is built up and handed over as a single
    // `accept_batch` run: attribution sinks resolve the whole run through
    // the batched LPM path. The hour boundaries are a pure function of
    // `flows_per_day` (see `hour_batches`), so the parallel fan-out below
    // reconstructs the exact same runs and every memo/bypass decision —
    // and with it every obs counter — is thread-layout-invariant.
    let mut hour_buf: Vec<FlowRecord> = Vec::with_capacity(per_hour + 1);
    for hour in 0..24u64 {
        let n = per_hour + usize::from((hour as usize) < remainder);
        let hour_base = day_base + hour * HOUR_US;
        for _ in 0..n {
            let asx = &tail.ases[tail.sample_index(&mut rng)];
            let p_v6 = (asx.v6_share * day_jitter).clamp(0.0, 1.0);
            let v6 = !asx.v6.is_empty() && rng.gen::<f64>() < p_v6;
            let dst = if v6 {
                let p = &asx.v6[rng.gen_range(0..asx.v6.len())];
                IpAddr::V6(
                    p.host(1 + rng.gen_range(0..1_000) as u128)
                        .expect("host fits"),
                )
            } else {
                let p = &asx.v4[rng.gen_range(0..asx.v4.len())];
                IpAddr::V4(p.host(1 + rng.gen_range(0..250)).expect("host fits"))
            };
            let start = hour_base + rng.gen_range(0..HOUR_US);
            let duration = rng.gen_range(1..600) as u64 * 1_000_000;
            let sport = sports.alloc(start, start + duration);
            // Lognormal size, median 100 kB: a Box–Muller normal in the
            // exponent gives real mass on both sides of the median with a
            // heavy upper tail, clamped to a sane record range.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let bytes = (100_000.0 * (1.3 * n).exp2()).clamp(200.0, 4e8) as u64;
            let key = if rng.gen::<f64>() < 0.1 {
                FlowKey::udp(if v6 { src6 } else { src4 }, sport, dst, 443)
            } else {
                FlowKey::tcp(if v6 { src6 } else { src4 }, sport, dst, 443)
            };
            hour_buf.push(FlowRecord {
                key,
                start,
                end: start + duration,
                bytes_orig: bytes / 20,
                bytes_reply: bytes,
                packets_orig: 1 + bytes / 30_000,
                packets_reply: 1 + bytes / 1_400,
                scope: Scope::External,
            });
        }
        sink.accept_batch(&hour_buf);
        hour_buf.clear();
    }
}

/// The per-hour batch sizes one synthesized day delivers: `flows_per_day`
/// spread over 24 hours, the remainder front-loaded — the same arithmetic
/// `synthesize_day` emits with, shared so the parallel flush can split a
/// buffered day back into identical `accept_batch` runs.
fn hour_batches(flows_per_day: usize) -> impl Iterator<Item = usize> {
    let per_hour = flows_per_day / 24;
    let remainder = flows_per_day % 24;
    (0..24usize).map(move |hour| per_hour + usize::from(hour < remainder))
}

/// Synthesize the whole run into `sink`: days ascending, records within a
/// day in generation order, byte-identical at any `config.threads` — the
/// same producer contract as residence synthesis, so every [`FlowSink`]
/// composes unchanged.
pub fn synthesize_long_tail_into<S: FlowSink>(
    world: &World,
    config: &LongTailTrafficConfig,
    sink: &mut S,
) {
    if config.threads.max(1) == 1 {
        for day in 0..config.num_days {
            synthesize_day(world, config, day, sink);
        }
        return;
    }
    // Chunked day fan-out (see `synth::run_days`): one chunk in flight,
    // flushed in day order, so peak memory is O(chunk × day records) and
    // the emitted sequence matches the sequential path exactly.
    let chunk = (config.threads * 2).max(1) as u32;
    let mut start = 0u32;
    while start < config.num_days {
        let end = (start + chunk).min(config.num_days);
        let buffers = fan_out((start..end).collect(), config.threads, |_, day| {
            let mut buf = CollectSink::new();
            synthesize_day(world, config, day, &mut buf);
            buf.into_records()
        });
        for records in buffers {
            // Re-deliver in the exact hour runs the sequential path emits,
            // so batched sinks see identical `accept_batch` boundaries (and
            // identical memo counters) at any thread count.
            let mut off = 0;
            for n in hour_batches(config.flows_per_day) {
                sink.accept_batch(&records[off..off + n]);
                off += n;
            }
            debug_assert_eq!(off, records.len());
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmon::sink::NullSink;
    use worldgen::WorldConfig;

    fn tailed_world() -> World {
        World::generate(
            &WorldConfig {
                num_sites: 200,
                ..WorldConfig::small()
            }
            .with_long_tail(1_000),
        )
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let world = tailed_world();
        let cfg = LongTailTrafficConfig {
            num_days: 4,
            flows_per_day: 3_000,
            threads: 1,
            ..LongTailTrafficConfig::default()
        };
        let mut seq = CollectSink::new();
        synthesize_long_tail_into(&world, &cfg, &mut seq);
        assert_eq!(seq.records.len(), 4 * 3_000);
        let mut par = CollectSink::new();
        synthesize_long_tail_into(
            &world,
            &LongTailTrafficConfig {
                threads: 3,
                ..cfg.clone()
            },
            &mut par,
        );
        assert_eq!(seq.records, par.records, "day fan-out changed the stream");
        // Days ascend (the producer contract aggregators rely on).
        let mut last_day = 0;
        for r in &seq.records {
            let day = r.start / DAY_US;
            assert!(day >= last_day);
            last_day = day;
        }
    }

    #[test]
    fn covers_the_tail_with_both_families() {
        let world = tailed_world();
        let cfg = LongTailTrafficConfig {
            num_days: 2,
            flows_per_day: 20_000,
            ..LongTailTrafficConfig::default()
        };
        let mut sink = (CollectSink::new(), NullSink::default());
        synthesize_long_tail_into(&world, &cfg, &mut sink);
        let records = sink.0.records;
        let v6 = records
            .iter()
            .filter(|r| matches!(r.key.dst, IpAddr::V6(_)))
            .count();
        assert!(v6 > 1_000, "v6 records {v6}");
        assert!(
            records.len() - v6 > 1_000,
            "v4 records {}",
            records.len() - v6
        );
        // Every destination attributes to a long-tail AS.
        let mut distinct = std::collections::BTreeSet::new();
        for r in &records {
            let asn = world.rib.origin_of(r.key.dst).expect("attributable");
            assert!(asn.0 >= worldgen::longtail::LONG_TAIL_ASN_BASE);
            distinct.insert(asn.0);
        }
        // Zipf sampling still reaches deep into the tail.
        assert!(distinct.len() > 400, "distinct ASes {}", distinct.len());
    }
}
