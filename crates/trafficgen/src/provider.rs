//! Provider-shared synthesis: one ISP, one CGN, many subscribers.
//!
//! [`synthesize_isp`] runs a subscriber cohort against a single
//! [`ProviderGateway`] whose binding pools persist across days and are
//! shared by every line — the deployment reality the day-local gateways of
//! [`crate::synth`] approximate away. The pipeline is:
//!
//! 1. **Demand generation** — for each simulated day, every subscriber's
//!    day is synthesized independently (provider gateway mode:
//!    stateless address mapping, no admission yet) and buffered. Days of
//!    different subscribers fan out over `config.threads` workers; the
//!    per-(subscriber, day) streams are pure functions of the seed, so the
//!    buffers are byte-identical at any thread count.
//! 2. **Admission replay** — the day's buffers are replayed *sequentially*
//!    through the shared gateway in canonical order (subscriber 0's day,
//!    then subscriber 1's, …). Translated records that win a binding — and
//!    all native records — flow on into the subscriber's [`FlowSink`];
//!    rejected records are dropped, exactly like a day-local gateway drop.
//!
//! Peak memory is O(subscribers × one day of records) for the replay
//! window plus whatever the sinks keep — independent of the number of
//! simulated days. Because admission is a sequential replay over
//! deterministic buffers, the full output (streams, per-subscriber
//! counters, gateway stats) is invariant to `threads` and `day_threads`.
//!
//! [`synthesize_isps`] fans several independent ISPs (e.g. one per pool
//! size in a CGN sweep) out over the same [`fan_out`] primitive.

use crate::par::fan_out;
use crate::profile::ResidenceProfile;
use crate::synth::{synthesize_day_into, GatewayMode, ResidenceCtx, ResidenceSetup, TrafficConfig};
use faults::PoolTarget;
use flowmon::sink::{CollectSink, FlowSink, NullSink};
use flowmon::FlowRecord;
use serde::Serialize;
use transition::provider::{Admission, ProviderDayStats, ProviderGateway, ProviderPool};
use transition::{AccessTech, GatewayConfig, GatewayStats};
use worldgen::World;

/// Microseconds per hour (fault windows are hour-granular).
const HOUR_US: u64 = 3_600_000_000;

/// Per-subscriber admission counters of a provider-shared run.
#[derive(Debug, Clone, Serialize)]
pub struct SubscriberStats {
    /// Subscriber index within the cohort — the unique identifier (keys
    /// are display letters and repeat past 26 subscribers).
    pub subscriber: usize,
    /// Subscriber key (profile letter; cycles in large cohorts).
    pub key: char,
    /// Access-technology label.
    pub tech: String,
    /// Records forwarded into the subscriber's sink (native + granted).
    pub forwarded: u64,
    /// Translated/tunneled records that won a binding.
    pub granted: u64,
    /// Records dropped because the shared pool was full.
    pub rejected: u64,
}

/// Synthesize one ISP's subscriber cohort against a shared gateway,
/// streaming each subscriber's admitted records into `sinks[i]`.
///
/// Subscriber `i` derives all randomness from `(config.seed, i)`, so the
/// run is deterministic and thread-invariant (see module docs). The
/// gateway is taken `&mut` so callers can inspect pool and per-day
/// counters afterwards; its pools must be fresh for reproducible sweeps.
///
/// # Panics
/// Panics when `sinks.len() != profiles.len()`.
pub fn synthesize_isp<S: FlowSink>(
    world: &World,
    profiles: &[ResidenceProfile],
    config: &TrafficConfig,
    gateway: &mut ProviderGateway,
    sinks: &mut [S],
) -> Vec<SubscriberStats> {
    assert_eq!(
        sinks.len(),
        profiles.len(),
        "one sink per subscriber profile"
    );
    let _span = obs::span!("synthesize-isp");
    let setups: Vec<ResidenceSetup> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| ResidenceSetup::build(world, config, p.clone(), i as u64))
        .collect();
    let mut stats: Vec<SubscriberStats> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| SubscriberStats {
            subscriber: i,
            key: p.key,
            tech: p.access_tech.label().to_string(),
            forwarded: 0,
            granted: 0,
            rejected: 0,
        })
        .collect();

    // One day at a time: generate every subscriber's day in parallel,
    // replay admissions sequentially, drop the buffers, move on. The
    // replay sees (day, subscriber, emission order) — the canonical
    // deterministic order the gateway documents. The fault plan acts here
    // too: scheduled pool shrinks resize the shared pools at each day
    // boundary, and outage windows flip the pools down/up as the replay
    // crosses each record's hour (pure window checks — no randomness, so
    // an empty plan leaves the replay byte-identical).
    let plan = &config.faults;
    let base_capacity = config.gateway.capacity;
    for day in 0..config.num_days {
        if !plan.is_empty() {
            gateway.set_capacity(plan.pool_capacity(base_capacity, day));
            // Day boundary: lift any outage carried over from yesterday's
            // final window (the per-record flips below only run on days an
            // outage touches).
            gateway.set_outage(ProviderPool::Nat64, false);
            gateway.set_outage(ProviderPool::Aftr, false);
        }
        let outage_today = !plan.is_empty() && plan.gateway_outage_on_day(day);
        let day_buffers: Vec<Vec<FlowRecord>> =
            fan_out((0..setups.len()).collect(), config.threads, |_, i| {
                let ctx = ResidenceCtx {
                    world,
                    config,
                    setup: &setups[i],
                };
                let mut buf = CollectSink::new();
                synthesize_day_into(&ctx, day, GatewayMode::Provider, &mut buf);
                buf.into_records()
            });
        for (i, records) in day_buffers.into_iter().enumerate() {
            let dslite = profiles[i].access_tech == AccessTech::DsLite;
            for record in &records {
                if outage_today {
                    let hour = ((record.start % flowmon::DAY) / HOUR_US) as u32;
                    gateway.set_outage(
                        ProviderPool::Nat64,
                        plan.gateway_down(PoolTarget::Nat64, day, hour),
                    );
                    gateway.set_outage(
                        ProviderPool::Aftr,
                        plan.gateway_down(PoolTarget::Aftr, day, hour),
                    );
                }
                match gateway.offer(record, dslite) {
                    Admission::Rejected | Admission::RejectedOutage => stats[i].rejected += 1,
                    verdict => {
                        if verdict == Admission::Granted {
                            stats[i].granted += 1;
                        }
                        stats[i].forwarded += 1;
                        sinks[i].accept(record);
                    }
                }
            }
        }
        // Shared-pool high-water at each day boundary (peak-so-far of the
        // lifetime counters — the replay order is canonical, so this is
        // deterministic and layout-invariant).
        obs::hist_record("gateway.pool_day_peak", gateway.stats().peak_active as u64);
        obs::gauge_max(
            "gateway.pool_peak_active",
            gateway.stats().peak_active as u64,
        );
    }
    stats
}

/// One independent ISP of a provider sweep.
#[derive(Debug, Clone)]
pub struct IspSpec {
    /// Display name (e.g. `"pool-1024"` in a capacity sweep).
    pub name: String,
    /// Subscriber cohort (see [`crate::profile::isp_cohort`]).
    pub profiles: Vec<ResidenceProfile>,
    /// Sizing of each shared pool (NAT64 and AFTR).
    pub gateway: GatewayConfig,
}

/// The outcome of one ISP's provider-shared run (aggregate only; use
/// [`synthesize_isp`] directly to also stream the flows somewhere).
#[derive(Debug, Clone, Serialize)]
pub struct IspRun {
    /// The spec's name.
    pub name: String,
    /// Pool sizing the run used.
    pub gateway_config: GatewayConfig,
    /// Combined lifetime counters of both shared pools.
    pub gateway: GatewayStats,
    /// Per-day admission counters (rejection-rate CDF input).
    pub daily: Vec<ProviderDayStats>,
    /// Per-subscriber counters, cohort order.
    pub subscribers: Vec<SubscriberStats>,
}

impl IspRun {
    /// Overall rejection rate of the shared pools.
    pub fn rejection_rate(&self) -> f64 {
        self.gateway.rejection_rate()
    }
}

/// Run several independent ISPs (one shared gateway each), fanning the
/// ISPs out over `config.threads` workers via the same [`fan_out`]
/// primitive as every other parallel axis. Inside each ISP the demand
/// generation runs sequentially (the outer fan-out already owns the
/// threads); results are in spec order and thread-invariant.
pub fn synthesize_isps(world: &World, isps: Vec<IspSpec>, config: &TrafficConfig) -> Vec<IspRun> {
    let threads = config.threads;
    fan_out(isps, threads, |_, spec| {
        let inner_cfg = TrafficConfig {
            threads: 1,
            gateway: spec.gateway,
            ..config.clone()
        };
        let mut gateway = ProviderGateway::new(world.transition.nat64_prefix, spec.gateway);
        let mut sinks: Vec<NullSink> = vec![NullSink::default(); spec.profiles.len()];
        let subscribers =
            synthesize_isp(world, &spec.profiles, &inner_cfg, &mut gateway, &mut sinks);
        IspRun {
            name: spec.name,
            gateway_config: spec.gateway,
            gateway: gateway.stats(),
            daily: gateway.daily().to_vec(),
            subscribers,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::isp_cohort;
    use worldgen::WorldConfig;

    fn world() -> World {
        World::generate(&WorldConfig::small())
    }

    fn cfg(days: u32, threads: usize) -> TrafficConfig {
        TrafficConfig {
            num_days: days,
            scale: 1.0 / 500.0,
            threads,
            ..TrafficConfig::fast()
        }
    }

    #[test]
    fn provider_run_is_thread_invariant() {
        let world = world();
        let profiles = isp_cohort(6);
        let gw_cfg = GatewayConfig {
            capacity: 64,
            binding_timeout: 1_800 * 1_000_000,
        };
        let run = |threads: usize, day_threads: usize| {
            let mut gateway = ProviderGateway::new(world.transition.nat64_prefix, gw_cfg);
            let mut sinks: Vec<CollectSink> =
                (0..profiles.len()).map(|_| CollectSink::new()).collect();
            let config = TrafficConfig {
                day_threads,
                ..cfg(8, threads)
            };
            let stats = synthesize_isp(&world, &profiles, &config, &mut gateway, &mut sinks);
            let flows: Vec<Vec<flowmon::FlowRecord>> =
                sinks.into_iter().map(|s| s.into_records()).collect();
            (stats, gateway.stats(), gateway.daily().to_vec(), flows)
        };
        let (s1, g1, d1, f1) = run(1, 1);
        for (threads, day_threads) in [(4, 1), (2, 3)] {
            let (s, g, d, f) = run(threads, day_threads);
            assert_eq!(f, f1, "flow streams differ at threads={threads}");
            assert_eq!(g.granted, g1.granted);
            assert_eq!(g.rejected, g1.rejected);
            assert_eq!(g.peak_active, g1.peak_active);
            assert_eq!(d.len(), d1.len());
            for (a, b) in s.iter().zip(&s1) {
                assert_eq!(
                    (a.forwarded, a.granted, a.rejected),
                    (b.forwarded, b.granted, b.rejected)
                );
            }
        }
    }

    #[test]
    fn shared_pool_creates_contention_a_lone_line_never_sees() {
        // The same cohort against (a) a roomy shared pool and (b) a tight
        // one: the tight pool must reject, and rejected records must be
        // absent from the sinks.
        let world = world();
        let profiles = isp_cohort(6);
        let run = |capacity: usize| {
            let gw_cfg = GatewayConfig {
                capacity,
                binding_timeout: 3_600 * 1_000_000,
            };
            let mut gateway = ProviderGateway::new(world.transition.nat64_prefix, gw_cfg);
            let mut sinks: Vec<NullSink> = vec![NullSink::default(); profiles.len()];
            let stats = synthesize_isp(&world, &profiles, &cfg(6, 2), &mut gateway, &mut sinks);
            let forwarded: u64 = sinks.iter().map(|s| s.flows).sum();
            (stats, gateway.stats(), forwarded)
        };
        let (stats_roomy, gw_roomy, fwd_roomy) = run(1_000_000);
        let (stats_tight, gw_tight, fwd_tight) = run(8);
        assert_eq!(gw_roomy.rejected, 0, "a huge pool never rejects");
        assert!(gw_tight.rejected > 0, "an 8-binding shared pool must");
        assert!(fwd_tight < fwd_roomy, "rejected records never reach sinks");
        let total_fwd: u64 = stats_tight.iter().map(|s| s.forwarded).sum();
        assert_eq!(total_fwd, fwd_tight);
        // Every gateway-using tech contends for the shared plant.
        for s in &stats_roomy {
            if s.tech != "ds-lite" {
                assert!(s.granted > 0, "{} holds NAT64 bindings", s.tech);
            }
        }
        assert!(
            stats_roomy
                .iter()
                .any(|s| s.tech == "ds-lite" && s.granted > 0),
            "DS-Lite lines hold AFTR bindings"
        );
    }

    #[test]
    fn bindings_persist_across_days_unlike_day_local_gateways() {
        // With a binding timeout far longer than a day and a pool smaller
        // than the daily demand, a shared gateway must keep rejecting on
        // later days (bindings never free), while day-local gateways reset
        // at midnight and grant again every morning.
        let world = world();
        let profiles = isp_cohort(2);
        let gw_cfg = GatewayConfig {
            capacity: 50,
            binding_timeout: 10 * 86_400 * 1_000_000, // 10 days
        };
        let mut gateway = ProviderGateway::new(world.transition.nat64_prefix, gw_cfg);
        let mut sinks: Vec<NullSink> = vec![NullSink::default(); profiles.len()];
        synthesize_isp(&world, &profiles, &cfg(5, 1), &mut gateway, &mut sinks);
        let daily = gateway.daily();
        assert!(daily.len() >= 4);
        assert!(
            daily[0].granted > 0,
            "day 0 grants until the pool fills: {daily:?}"
        );
        for d in &daily[2..] {
            assert_eq!(
                d.granted, 0,
                "with a 10-day timeout nothing frees: {daily:?}"
            );
            assert!(d.rejected > 0);
        }
    }

    #[test]
    fn provider_replay_applies_outage_and_shrink_deterministically() {
        use faults::{FaultPlan, Window};
        let world = world();
        let profiles = isp_cohort(4);
        let plan = FaultPlan::new(3)
            .gateway_outage(PoolTarget::Nat64, Window::new(1, 2, 6, 18))
            .pool_shrink(0.1, Window::days(3, 4));
        let run = |threads: usize, plan: FaultPlan| {
            let gw_cfg = GatewayConfig {
                capacity: 256,
                binding_timeout: 1_800 * 1_000_000,
            };
            let mut gateway = ProviderGateway::new(world.transition.nat64_prefix, gw_cfg);
            let mut sinks: Vec<CollectSink> =
                (0..profiles.len()).map(|_| CollectSink::new()).collect();
            let config = TrafficConfig {
                faults: plan,
                ..cfg(6, threads)
            };
            let stats = synthesize_isp(&world, &profiles, &config, &mut gateway, &mut sinks);
            let flows: Vec<Vec<flowmon::FlowRecord>> =
                sinks.into_iter().map(|s| s.into_records()).collect();
            (stats, gateway.stats(), gateway.outage_stats(), flows)
        };
        let (s1, _, o1, f1) = run(1, plan.clone());
        let (_, _, o4, f4) = run(4, plan.clone());
        assert_eq!(f1, f4, "faulted provider replay differs across threads");
        assert_eq!(o1.total(), o4.total());
        assert!(o1.nat64_rejected > 0, "outage window must reject offers");
        assert_eq!(o1.aftr_rejected, 0, "AFTR was never scheduled down");
        let (sc, _, oc, fc) = run(1, FaultPlan::default());
        assert_eq!(oc.total(), 0);
        let forwarded = |f: &[Vec<flowmon::FlowRecord>]| f.iter().map(Vec::len).sum::<usize>();
        assert!(
            forwarded(&f1) < forwarded(&fc),
            "outage-rejected records never reach sinks"
        );
        let rejected = |s: &[SubscriberStats]| s.iter().map(|x| x.rejected).sum::<u64>();
        assert!(
            rejected(&s1) >= o1.total(),
            "every outage rejection shows up in subscriber counters"
        );
        assert!(rejected(&s1) > rejected(&sc));
    }

    #[test]
    fn isp_sweep_orders_results_and_monotone_rejection() {
        let world = world();
        let specs: Vec<IspSpec> = [16usize, 256, 1_000_000]
            .into_iter()
            .map(|capacity| IspSpec {
                name: format!("pool-{capacity}"),
                profiles: isp_cohort(4),
                gateway: GatewayConfig {
                    capacity,
                    binding_timeout: 1_800 * 1_000_000,
                },
            })
            .collect();
        let runs = synthesize_isps(&world, specs, &cfg(5, 4));
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].name, "pool-16");
        assert!(
            runs[0].rejection_rate() >= runs[1].rejection_rate()
                && runs[1].rejection_rate() >= runs[2].rejection_rate(),
            "rejection rate falls as the pool grows: {:?}",
            runs.iter()
                .map(|r| (r.name.clone(), r.rejection_rate()))
                .collect::<Vec<_>>()
        );
        assert_eq!(runs[2].gateway.rejected, 0);
        // Offered demand is identical across pool sizes (same seed).
        let offered = |r: &IspRun| -> u64 { r.daily.iter().map(|d| d.offered).sum() };
        assert_eq!(offered(&runs[0]), offered(&runs[1]));
        assert_eq!(offered(&runs[1]), offered(&runs[2]));
    }
}
