//! The traffic synthesizer: profiles × diurnal activity × Happy Eyeballs →
//! flow records, streamed into a [`FlowSink`].
//!
//! Synthesis is organized around *days*: each (residence, day) pair derives
//! its own RNG stream from the master seed, so days are mutually independent
//! and can run on any number of worker threads with byte-identical output
//! (the same determinism contract `synthesize_all` gives across residences).
//! Per-residence state that must be stable across days (LAN addressing, the
//! device population) comes from a residence-level stream seeded without a
//! day component.
//!
//! Records are *pushed*, not materialized: every completed flow goes
//! straight into the caller's [`FlowSink`] in a deterministic order —
//! records of one (residence, day) contiguously and in emission order, days
//! ascending. [`synthesize_residence`] wraps the streaming core with a
//! [`CollectSink`], reproducing the historical `Vec<FlowRecord>` dataset
//! byte-for-byte; aggregate sinks run the same synthesis in O(aggregator)
//! memory however many days are simulated.
//!
//! Residences whose [`ResidenceProfile::access_tech`] is not native
//! dual-stack route their legacy traffic through the world's transition
//! plant: IPv6-only lines resolve through DNS64 and reach IPv4-only
//! services via the NAT64 gateway (flows towards the RFC 6052 prefix),
//! 464XLAT lines additionally push v4-literal application traffic through
//! the CLAT, and DS-Lite lines tunnel IPv4 to an AFTR whose NAT44 binding
//! table — like the NAT64's — can run out of ports under load. Those
//! gateways come in two deployments: the historical *day-local* instances
//! (one per residence-day), and the shared
//! provider gateway of [`crate::provider`], which defers binding admission
//! to a pool persisted across days and residences.

use crate::par::fan_out;
use crate::profile::ResidenceProfile;
use dnssim::{Name, ResolveAddrs, Resolver};
use faults::{DayPathFault, FaultPlan, FaultyResolver, PoolTarget, DNS_STREAM, FLOW_DROP_STREAM};
use flowmon::sink::{CollectSink, FlowSink};
use flowmon::{DropCause, DropCounters, FlowKey, FlowRecord, RouterMonitor, TranslationMap};
use happyeyeballs::{HappyEyeballs, HappyEyeballsConfig};
use iputil::prefix::{Prefix4, Prefix6};
use iputil::Family;
use netsim::{Network, PathProfile, MILLIS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use transition::{AccessTech, Aftr, Dns64, GatewayConfig, GatewayStats, Nat64Gateway};
use worldgen::clientsvc::{ClientServiceRuntime, ServiceKind};
use worldgen::World;

/// Microseconds per hour / day (local aliases to keep formulas readable).
const HOUR_US: u64 = 3_600_000_000;
const DAY_US: u64 = 24 * HOUR_US;

/// Share of a 464XLAT line's traffic from IPv4-literal applications that
/// bypasses DNS64 and goes through the CLAT even when the service has
/// native IPv6 (RFC 7849 puts such apps in the low single digits; the CLAT
/// exists exactly for them).
const CLAT_LITERAL_SHARE: f64 = 0.05;

/// Traffic synthesis configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Master seed (per-(residence, day) RNGs derive from it).
    pub seed: u64,
    /// Days to simulate (the paper observes ~273: Nov 2024 – Aug 2025).
    pub num_days: u32,
    /// Flow/byte sampling factor: recorded flows ≈ real flows × scale. The
    /// paper's 110M-flow residences are impractical (and pointless) to
    /// materialize; fractions are scale-invariant and absolute totals are
    /// rescaled by 1/scale in reports.
    pub scale: f64,
    /// Probability that a winning IPv6 connection leaves a losing IPv4
    /// SYN-flow in the log (Happy Eyeballs both-families effect).
    pub he_both_flow_rate: f64,
    /// Happy Eyeballs parameters for the per-(day, service) health race.
    pub he: HappyEyeballsConfig,
    /// Worker threads fanning residences out in [`synthesize_all`]
    /// (1 = sequential). Output is identical at any thread count.
    pub threads: usize,
    /// Worker threads fanning *days* out inside one residence
    /// (1 = sequential). Days derive independent RNGs from
    /// `(seed, residence, day)`, so output is identical at any thread
    /// count; combined with `threads` the two levels multiply. With more
    /// than one day worker each day buffers before flushing to the sink in
    /// day order, so peak memory grows by O(in-flight days), not O(run).
    pub day_threads: usize,
    /// Binding-table limits of the NAT64/AFTR gateways serving translated
    /// residences (shrink to provoke the exhaustion scenario).
    pub gateway: GatewayConfig,
    /// Scheduled failure timeline ([`faults`] crate). The default empty
    /// plan draws no randomness and leaves output byte-identical to a run
    /// without the fault plane; a non-empty plan perturbs only what it
    /// schedules, from dedicated `(fault, residence, day)` RNG streams.
    pub faults: FaultPlan,
    /// Derive a dedicated RNG stream per `(day, service)` for each
    /// service's external emission (hour grid + day-end flush) instead of
    /// letting every service share the day stream. With the flag on, one
    /// service's draw count no longer shifts any other service's draws —
    /// the isolation the service×hour analysis grid needs. Off by default:
    /// enabling it changes the stream layout and therefore the output
    /// bytes, but output stays byte-identical across `threads` ×
    /// `day_threads` either way.
    pub service_streams: bool,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x7e51de9ce,
            num_days: 273,
            scale: 1.0 / 1000.0,
            he_both_flow_rate: 0.13,
            he: HappyEyeballsConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
            day_threads: 1,
            gateway: GatewayConfig::default(),
            faults: FaultPlan::default(),
            service_streams: false,
        }
    }
}

impl TrafficConfig {
    /// A fast configuration for tests/examples: 60 days at 1/2000 scale.
    pub fn fast() -> TrafficConfig {
        TrafficConfig {
            num_days: 60,
            scale: 1.0 / 2000.0,
            ..TrafficConfig::default()
        }
    }
}

/// The synthesized dataset of one residence (the materializing API:
/// [`ResidenceSummary`] plus every flow record, collected via
/// [`CollectSink`]).
#[derive(Debug)]
pub struct ResidenceDataset {
    /// The generating profile.
    pub profile: ResidenceProfile,
    /// All flow records (external + internal), in generation order.
    pub flows: Vec<FlowRecord>,
    /// The sampling factor that produced `flows`.
    pub scale: f64,
    /// Days simulated.
    pub num_days: u32,
    /// Binding-table counters of the residence's translator (NAT64 for the
    /// IPv6-only techs, the AFTR's NAT44 for DS-Lite); `None` on lines that
    /// use no stateful gateway.
    pub gateway: Option<GatewayStats>,
    /// Flows lost to the fault plane, by cause (all-zero without a plan).
    pub drops: DropCounters,
}

/// What a streaming synthesis returns: everything [`ResidenceDataset`]
/// carries except the records themselves (those went to the sink).
#[derive(Debug, Clone)]
pub struct ResidenceSummary {
    /// The generating profile.
    pub profile: ResidenceProfile,
    /// The sampling factor of the emitted stream.
    pub scale: f64,
    /// Days simulated.
    pub num_days: u32,
    /// Day-local gateway counters (`None` on lines without a stateful
    /// gateway, and always `None` under a shared provider gateway — the
    /// provider holds the pool then).
    pub gateway: Option<GatewayStats>,
    /// Flows lost to the fault plane, by cause (all-zero without a plan).
    pub drops: DropCounters,
}

/// Diurnal activity weight for human traffic: near-zero overnight, a
/// morning shoulder and an evening peak rising to midnight (the paper's
/// Fig 2 daily component).
fn human_hour_weight(hour: u32, weekday: u32) -> f64 {
    let base = match hour {
        0 => 0.55,
        1..=5 => 0.08,
        6..=8 => 0.35,
        9..=11 => 0.50, // mid-morning secondary peak
        12..=15 => 0.40,
        16..=18 => 0.70,
        19..=21 => 1.00,
        22..=23 => 0.95,
        _ => unreachable!(),
    };
    // Weak weekly pattern: slightly more daytime use on weekends.
    let weekend = weekday == 5 || weekday == 6;
    if weekend && (9..=18).contains(&hour) {
        base * 1.15
    } else {
        base
    }
}

/// Residence-level RNG seed (devices, addressing — stable across days).
fn residence_seed(seed: u64, residence_index: u64) -> u64 {
    seed.wrapping_add(residence_index.wrapping_mul(0x9e3779b97f4a7c15))
}

/// Day-level RNG seed: a second independent stream per (residence, day).
fn day_seed(seed: u64, residence_index: u64, day: u32) -> u64 {
    residence_seed(seed, residence_index)
        .wrapping_add((day as u64 + 1).wrapping_mul(0xd134_2543_de82_ef95))
}

/// Service-level RNG seed: a third independent stream per
/// (residence, day, service), used only under
/// [`TrafficConfig::service_streams`].
fn service_seed(seed: u64, residence_index: u64, day: u32, service_index: usize) -> u64 {
    day_seed(seed, residence_index, day)
        .wrapping_add((service_index as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// Synthesize every paper residence, fanning residences out over
/// `config.threads` scoped worker threads.
pub fn synthesize_all(world: &World, config: &TrafficConfig) -> Vec<ResidenceDataset> {
    synthesize_profiles(world, crate::profile::paper_residences(), config)
}

/// Synthesize an arbitrary cohort of residences (the transition-technology
/// cohort, ablations), fanning residences out over `config.threads` and
/// materializing every record.
///
/// Residence `i` derives all randomness from `(seed, i)` and, inside,
/// `(seed, i, day)` alone, so output is byte-identical at any combination
/// of `threads` and `day_threads`.
pub fn synthesize_profiles(
    world: &World,
    profiles: Vec<ResidenceProfile>,
    config: &TrafficConfig,
) -> Vec<ResidenceDataset> {
    let _span = obs::span!("synthesize");
    fan_out(profiles, config.threads, |i, p| {
        synthesize_residence(world, p, config, i as u64)
    })
}

/// Streaming cohort synthesis: every residence gets its own sink (built by
/// `make_sink` from the residence's index and profile) and streams into it
/// while residences fan out over `config.threads`. Returns summaries and
/// the filled sinks in input order.
///
/// This is the paper-scale entry point: with aggregator sinks the whole run
/// completes in O(residences × aggregator) memory — no flow record outlives
/// its push.
pub fn synthesize_profiles_with<S, F>(
    world: &World,
    profiles: Vec<ResidenceProfile>,
    config: &TrafficConfig,
    make_sink: F,
) -> Vec<(ResidenceSummary, S)>
where
    S: FlowSink + Send,
    F: Fn(usize, &ResidenceProfile) -> S + Sync,
{
    let _span = obs::span!("synthesize");
    fan_out(profiles, config.threads, |i, profile| {
        let mut sink = make_sink(i, &profile);
        let summary = synthesize_residence_into(world, profile, config, i as u64, &mut sink);
        (summary, sink)
    })
}

/// Per-residence state stable across days: LAN addressing, the device
/// population and the calibrated service weights. Built once per residence
/// from the residence-level RNG stream, then shared read-only by every day
/// worker (and, in provider mode, across the whole run).
pub(crate) struct ResidenceSetup {
    pub(crate) profile: ResidenceProfile,
    pub(crate) devices: Vec<Device>,
    pub(crate) base_weights: Vec<f64>,
    pub(crate) residence_factor: f64,
    pub(crate) dual_share: f64,
    pub(crate) lan4: Prefix4,
    pub(crate) lan6: Prefix6,
    pub(crate) residence_index: u64,
}

impl ResidenceSetup {
    pub(crate) fn build(
        world: &World,
        config: &TrafficConfig,
        profile: ResidenceProfile,
        residence_index: u64,
    ) -> ResidenceSetup {
        obs::counter_add("synth.residence_streams", 1);
        let mut rng = SmallRng::seed_from_u64(residence_seed(config.seed, residence_index));
        let services = &world.client_services;

        // LAN addressing: 192.168.<idx>.0/24 and a delegated /56 for the
        // first 255 residences (the historical scheme, preserved so small
        // cohorts stay byte-identical); larger cohorts — ISP-scale CGN
        // studies — spill into 10.0.0.0/8 and deeper 2001:db8::/32
        // subnets. The world allocates public space from 24.0.0.0/6,
        // 100.64.0.0/10 and 198.18.0.0/15, so neither LAN pool collides
        // with a service or translator address.
        assert!(
            residence_index < 65_000,
            "residence_index {residence_index} exceeds the LAN addressing plan (max 64999)"
        );
        let (lan4, lan6): (Prefix4, Prefix6) = if residence_index < 255 {
            (
                format!("192.168.{}.0/24", residence_index + 1)
                    .parse()
                    .expect("valid LAN prefix"),
                format!("2001:db8:{:x}00::/56", residence_index + 1)
                    .parse()
                    .expect("valid LAN prefix"),
            )
        } else {
            let i = residence_index - 255;
            (
                format!("10.{}.{}.0/24", i >> 8, i & 0xff)
                    .parse()
                    .expect("valid LAN prefix"),
                // Subnet id at the /56 boundary (bits 72..96). Small
                // residences sit at multiples of 2^88, i.e. subnet ids
                // that are multiples of 0x10000 at this scale — first
                // possible collision at index 65535, above the assert.
                Prefix6::new(
                    std::net::Ipv6Addr::from(
                        (0x2001_0db8u128 << 96) | ((residence_index as u128 + 1) << 72),
                    ),
                    56,
                ),
            )
        };

        // Devices: ~3 per resident; some broken-v6 at Residence C.
        let n_devices = (profile.residents * 3).clamp(2, 24);
        let devices: Vec<Device> = (0..n_devices)
            .map(|i| Device {
                v4: lan4.host(10 + i as u64).expect("device fits"),
                v6: lan6.host(0x10 + i as u128).expect("device fits"),
                dual_stack: rng.gen::<f64>() >= profile.broken_v6_share,
            })
            .collect();

        // Base per-service weights (global × residence boosts).
        let base_weights: Vec<f64> = services
            .iter()
            .map(|s| {
                let boost = profile
                    .mix_boosts
                    .iter()
                    .find(|(k, _)| *k == s.service.key)
                    .map(|(_, b)| *b)
                    .unwrap_or(1.0);
                s.service.weight * boost
            })
            .collect();

        // Residence factor: scales every service's IPv6 propensity so the
        // volume-weighted mix hits the residence target (the mechanism that
        // caps per-AS fractions at Residence C).
        let mix_v6: f64 = {
            let num: f64 = services
                .iter()
                .zip(&base_weights)
                .map(|(s, w)| w * s.service.v6_share)
                .sum();
            let den: f64 = base_weights.iter().sum();
            num / den
        };
        let dual_share = devices.iter().filter(|d| d.dual_stack).count() as f64 / n_devices as f64;
        let residence_factor = profile.target_ext_v6_bytes / (mix_v6 * dual_share).max(1e-9);

        ResidenceSetup {
            profile,
            devices,
            base_weights,
            residence_factor,
            dual_share,
            lan4,
            lan6,
            residence_index,
        }
    }
}

/// Read-only view a day worker gets: the world, the run configuration and
/// the residence's stable setup.
pub(crate) struct ResidenceCtx<'a> {
    pub(crate) world: &'a World,
    pub(crate) config: &'a TrafficConfig,
    pub(crate) setup: &'a ResidenceSetup,
}

/// How a day's translated traffic meets its stateful gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GatewayMode {
    /// The historical model: a fresh NAT64/AFTR per (residence, day);
    /// exhausted pools drop flows at emission time.
    Local,
    /// Shared provider gateway ([`crate::provider`]): addresses are mapped
    /// statelessly here and *admission* happens later, when the provider
    /// replays the day's stream against its persistent pool.
    Provider,
}

/// Synthesize one residence's dataset, materializing every record
/// (streaming core + [`CollectSink`]).
pub fn synthesize_residence(
    world: &World,
    profile: ResidenceProfile,
    config: &TrafficConfig,
    residence_index: u64,
) -> ResidenceDataset {
    let mut sink = CollectSink::new();
    let summary = synthesize_residence_into(world, profile, config, residence_index, &mut sink);
    ResidenceDataset {
        profile: summary.profile,
        flows: sink.into_records(),
        scale: summary.scale,
        num_days: summary.num_days,
        gateway: summary.gateway,
        drops: summary.drops,
    }
}

/// Synthesize one residence, streaming every record into `sink`.
///
/// Emission order is deterministic — days ascending, records within a day
/// in generation order — and independent of `config.day_threads` (day
/// workers buffer their day and flush in order). A [`CollectSink`] here
/// reproduces [`synthesize_residence`]'s `flows` byte-for-byte.
pub fn synthesize_residence_into<S: FlowSink>(
    world: &World,
    profile: ResidenceProfile,
    config: &TrafficConfig,
    residence_index: u64,
    sink: &mut S,
) -> ResidenceSummary {
    let _span = obs::span!("residence", residence = residence_index);
    let setup = ResidenceSetup::build(world, config, profile, residence_index);
    let ctx = ResidenceCtx {
        world,
        config,
        setup: &setup,
    };
    let (gateway, drops) = run_days(&ctx, GatewayMode::Local, sink);
    ResidenceSummary {
        profile: setup.profile,
        scale: config.scale,
        num_days: config.num_days,
        gateway,
        drops,
    }
}

/// Drive every day of one residence into `sink`, sequentially or over
/// `day_threads` workers (buffered, flushed in day order).
pub(crate) fn run_days<S: FlowSink>(
    ctx: &ResidenceCtx<'_>,
    mode: GatewayMode,
    sink: &mut S,
) -> (Option<GatewayStats>, DropCounters) {
    let config = ctx.config;
    let mut gateway: Option<GatewayStats> = None;
    let mut drops = DropCounters::default();
    let absorb = |gateway: &mut Option<GatewayStats>, stats: Option<GatewayStats>| {
        if let Some(stats) = stats {
            gateway
                .get_or_insert_with(GatewayStats::default)
                .absorb(stats);
        }
    };
    if config.day_threads.max(1) == 1 {
        // Fully streaming: a day's records go straight to the sink.
        for day in 0..config.num_days {
            let (stats, day_drops) = synthesize_day_into(ctx, day, mode, sink);
            absorb(&mut gateway, stats);
            drops.absorb(day_drops);
        }
    } else {
        // Day fan-out, chunked: each worker buffers its day, and only one
        // chunk of days is in flight at a time — the chunk flushes to the
        // sink in day order before the next begins, so the record sequence
        // is identical to the sequential path and peak memory is bounded
        // by O(chunk) day buffers, not O(run). Chunk size is a small
        // multiple of the worker count (enough days per dispatch to
        // amortize thread spawning; day seeds are chunk-oblivious, so the
        // split cannot affect output).
        let day_threads = config.day_threads;
        let chunk = (day_threads * 2).max(1) as u32;
        let mut start = 0u32;
        while start < config.num_days {
            let end = (start + chunk).min(config.num_days);
            let day_results = fan_out((start..end).collect(), day_threads, |_, day| {
                let mut buf = CollectSink::new();
                let outcome = synthesize_day_into(ctx, day, mode, &mut buf);
                (buf.into_records(), outcome)
            });
            for (records, (stats, day_drops)) in day_results {
                for r in &records {
                    sink.accept(r);
                }
                absorb(&mut gateway, stats);
                drops.absorb(day_drops);
            }
            start = end;
        }
    }
    (gateway, drops)
}

/// Ephemeral source-port allocator for one (residence, day).
///
/// The historical allocator was a bare cursor (`sport.wrapping_add(1)
/// .max(1024)`) over the 1024..=65535 ring. Within its first lap that
/// issues distinct ports, but past 64 512 flows the cursor laps and blindly
/// reissues a port that an earlier long-lived flow (streaming sessions run
/// up to 1.5 h) may still hold — two distinct flows to the same service
/// then share a 5-tuple and silently merge in any conntrack-style
/// [`flowmon::FlowTable`]. This allocator keeps the identical cursor
/// sequence (so every run that never laps stays byte-identical to the
/// historical output) but records each issued port's busy horizon and
/// skips ports whose previous flow is still alive at allocation time.
///
/// Horizons are stored in 2-second ticks relative to the day start
/// (`⌈end/2s⌉`, conservative), so the whole table is one 128 KB `Vec<u16>`
/// per day worker.
pub struct SportAlloc {
    cursor: u16,
    day_base_us: u64,
    /// Per-port busy horizon in day-relative 2-second ticks; port `p` is
    /// free for a flow starting at tick `t` when `busy_until[p] <= t`.
    busy_until: Vec<u16>,
}

/// Tick width of the [`SportAlloc`] busy table.
const SPORT_TICK_US: u64 = 2_000_000;

impl SportAlloc {
    /// A fresh allocator whose first issued port is `start + 1` (the
    /// historical cursor seed is 10 000).
    pub fn new(start: u16, day_base_us: u64) -> SportAlloc {
        SportAlloc {
            cursor: start,
            day_base_us,
            busy_until: vec![0; 65_536],
        }
    }

    fn tick(&self, us: u64) -> u64 {
        us.saturating_sub(self.day_base_us) / SPORT_TICK_US
    }

    /// Allocate a source port for a flow spanning `[start_us, end_us]`
    /// (absolute timestamps). Skips ports still held by an earlier flow;
    /// when every port is held (> 64 512 simultaneously live flows) the
    /// cursor port is reissued — a genuine collision no 16-bit port space
    /// can avoid.
    pub fn alloc(&mut self, start_us: u64, end_us: u64) -> u16 {
        let start_tick = self.tick(start_us);
        let end_tick = (self.tick(end_us) + 1).min(u16::MAX as u64) as u16;
        let ring = 65_535u32 - 1_024 + 1;
        for _ in 0..ring {
            self.cursor = if self.cursor == 65_535 {
                1_024
            } else {
                (self.cursor + 1).max(1_024)
            };
            if u64::from(self.busy_until[self.cursor as usize]) <= start_tick {
                break;
            }
        }
        let p = self.cursor;
        let slot = &mut self.busy_until[p as usize];
        *slot = (*slot).max(end_tick);
        p
    }

    /// A side-channel port for a companion flow — the Happy-Eyeballs
    /// losing IPv4 attempt that rides alongside a just-allocated flow.
    /// Starts at the historical `cursor + 7` offset (ahead of the cursor,
    /// so a run that never laps gets the exact pre-fix port) and skips
    /// ports still held at `start_us`, so the residue can no longer share
    /// a 5-tuple with a live long-lived flow after a lap.
    ///
    /// The chosen port is deliberately *not* recorded in the busy table:
    /// marking it would perturb the main cursor's skip decisions seven
    /// allocations later and break the non-lapping byte-identity
    /// contract. The unmarked ~2-second residue is therefore the one
    /// remaining window in which a later allocation can reuse its port.
    pub fn companion_port(&self, start_us: u64) -> u16 {
        let start_tick = self.tick(start_us);
        let mut p = self.cursor.wrapping_add(7).max(1_024);
        // Bounded scan: residue collisions are rare even post-lap; on a
        // pathological all-busy day fall through to the last candidate.
        for _ in 0..64 {
            if u64::from(self.busy_until[p as usize]) <= start_tick {
                break;
            }
            p = if p == 65_535 {
                1_024
            } else {
                (p + 1).max(1_024)
            };
        }
        p
    }
}

/// Mutable per-day machinery: RNG, router, port counter, the output sink
/// and (for translated access technologies in [`GatewayMode::Local`]) the
/// stateful gateways.
///
/// Local-mode gateways are instantiated per day — the price of day
/// independence (and thus day-level parallelism). This is an
/// *approximation*: bindings still held at midnight are dropped instead of
/// carrying into the next day, so for binding timeouts that are a
/// meaningful fraction of a day (the exhaustion experiments use 30–60
/// minutes) the pool pressure in the first timeout-window of each day is
/// understated and reported rejection rates are a lower bound. At the
/// default two-minute timeout the effect is negligible; the shared
/// cross-day pool is exactly what [`crate::provider`] adds.
struct DayRun<'a, S: FlowSink> {
    ctx: &'a ResidenceCtx<'a>,
    rng: SmallRng,
    router: RouterMonitor,
    sports: SportAlloc,
    mode: GatewayMode,
    nat64: Option<Nat64Gateway>,
    aftr: Option<Aftr>,
    faults: Option<DayFaults>,
    drops: DropCounters,
    sink: &'a mut S,
}

/// The fault plane's per-day machinery, built only for a non-empty plan
/// (rule 1 of the [`faults`] determinism contract: an empty plan draws
/// nothing). Flow-drop decisions come from a dedicated stream keyed by
/// `(residence, day)`, so they are layout-invariant like everything else.
struct DayFaults {
    rng: SmallRng,
    path: Vec<DayPathFault>,
}

impl DayFaults {
    /// Is this flow eaten by an injected path drop? At most one draw per
    /// matching degradation, in plan order.
    fn drops_flow(&mut self, family_v6: bool, day: u32, hour: u32) -> bool {
        let family = if family_v6 { Family::V6 } else { Family::V4 };
        for f in &self.path {
            if f.drop_rate > 0.0
                && f.family == family
                && f.window.covers(day, hour)
                && self.rng.gen::<f64>() < f.drop_rate
            {
                return true;
            }
        }
        false
    }
}

impl<S: FlowSink> DayRun<'_, S> {
    /// Classify, finalize and push one record to the sink (the streaming
    /// replacement for buffering in the router's flow table).
    fn emit(&mut self, key: FlowKey, start: u64, end: u64, bytes_orig: u64, bytes_reply: u64) {
        // The single logical emission point: day-buffered layouts replay
        // these records into the outer sink mechanically, so counting the
        // replay too would double-count and break layout invariance.
        obs::counter_add("synth.flows_emitted", 1);
        obs::hist_record("synth.flow_bytes", bytes_orig + bytes_reply);
        obs::hist_record("synth.flow_duration_ms", (end - start) / 1_000);
        let record = self
            .router
            .observe(key, start, end, bytes_orig, bytes_reply);
        self.sink.accept(&record);
    }

    /// Emit one external service flow of `bytes` total volume. Returns
    /// `false` when the flow was refused (gateway exhausted / no path).
    #[allow(clippy::too_many_arguments)]
    fn emit_external(
        &mut self,
        svc: &ClientServiceRuntime,
        family_v6: bool,
        bytes: u64,
        day: u32,
        hour: u32,
    ) -> bool {
        let tech = self.ctx.setup.profile.access_tech;
        let mode = self.mode;
        let nat64_prefix = self.ctx.world.transition.nat64_prefix;
        // Injected path drops decide *before* any synthesis-RNG draw, so a
        // dropped flow consumes nothing from the day stream and every
        // surviving flow's randomness is untouched by the fault plane.
        if let Some(faults) = self.faults.as_mut() {
            if faults.drops_flow(family_v6, day, hour) {
                self.drops.record(DropCause::PathLoss);
                return false;
            }
        }
        let rng = &mut self.rng;
        let devices = &self.ctx.setup.devices;
        let start = day as u64 * DAY_US + hour as u64 * HOUR_US + rng.gen_range(0..HOUR_US);
        let duration = match svc.service.kind {
            ServiceKind::Streaming | ServiceKind::LiveVideo => {
                rng.gen_range(600..3600) as u64 * 1_000_000
            }
            ServiceKind::VideoConf => rng.gen_range(900..5400) as u64 * 1_000_000,
            ServiceKind::Download => rng.gen_range(60..900) as u64 * 1_000_000,
            _ => rng.gen_range(1..120) as u64 * 1_000_000,
        };
        let sport = self.sports.alloc(start, start + duration);

        let (src, dst, src_v4) = if family_v6 {
            // Native IPv6 flow. On dual-stack/DS-Lite lines this needs a
            // device with working WAN IPv6; on an IPv6-only wire every
            // device is v6-provisioned by definition (the bucket can only
            // carry bytes there anyway — `dual_share` gates p_v6 on the
            // other techs), so any device serves and the loop below cannot
            // spin on an all-broken population.
            let device = if tech.v6_only_wire() {
                &devices[rng.gen_range(0..devices.len())]
            } else {
                loop {
                    let d = &devices[rng.gen_range(0..devices.len())];
                    if d.dual_stack {
                        break d;
                    }
                }
            };
            let dst = svc.v6[rng.gen_range(0..svc.v6.len())];
            (IpAddr::V6(device.v6), dst, Some(device.v4))
        } else {
            let device = &devices[rng.gen_range(0..devices.len())];
            let IpAddr::V4(dst4) = svc.v4[rng.gen_range(0..svc.v4.len())] else {
                unreachable!("service v4 pool holds IPv4 addresses");
            };
            match tech {
                AccessTech::Ipv6OnlyNat64 | AccessTech::Xlat464 => {
                    // Legacy traffic crosses the wire as IPv6 towards the
                    // RFC 6052 mapping of the true destination; each flow
                    // consumes a NAT64 binding (locally here, or at the
                    // shared provider during its replay).
                    let dst6 = match mode {
                        GatewayMode::Local => {
                            // A scheduled outage rejects before the pool is
                            // even consulted (pure window check, no RNG).
                            if self
                                .ctx
                                .config
                                .faults
                                .gateway_down(PoolTarget::Nat64, day, hour)
                            {
                                self.drops.record(DropCause::GatewayOutage);
                                return false;
                            }
                            let gw = self.nat64.as_mut().expect("v6-only line has a NAT64");
                            match gw.translate(dst4, start, start + duration) {
                                Ok(d) => d,
                                Err(_) => {
                                    // pool exhausted: flow dropped
                                    self.drops.record(DropCause::PoolExhausted);
                                    return false;
                                }
                            }
                        }
                        GatewayMode::Provider => nat64_prefix.embed(dst4),
                    };
                    (IpAddr::V6(device.v6), IpAddr::V6(dst6), None)
                }
                AccessTech::DsLite => {
                    // Inner IPv4 flow over the softwire; the AFTR's NAT44
                    // must grant a binding (unless an outage rejects first).
                    if mode == GatewayMode::Local {
                        if self
                            .ctx
                            .config
                            .faults
                            .gateway_down(PoolTarget::Aftr, day, hour)
                        {
                            self.drops.record(DropCause::GatewayOutage);
                            return false;
                        }
                        if self
                            .aftr
                            .as_mut()
                            .expect("DS-Lite line has an AFTR")
                            .admit(start, start + duration)
                            .is_err()
                        {
                            self.drops.record(DropCause::PoolExhausted);
                            return false;
                        }
                    }
                    (IpAddr::V4(device.v4), IpAddr::V4(dst4), None)
                }
                _ => (IpAddr::V4(device.v4), IpAddr::V4(dst4), None),
            }
        };

        let proto_udp = matches!(
            svc.service.kind,
            ServiceKind::VideoConf | ServiceKind::Gaming
        ) || self.rng.gen::<f64>() < 0.05;
        let key = if proto_udp {
            FlowKey::udp(src, sport, dst, 443)
        } else {
            FlowKey::tcp(src, sport, dst, 443)
        };
        // Download-heavy: most bytes flow from the server.
        self.emit(key, start, start + duration, bytes / 20, bytes);

        // Happy Eyeballs residue: on lines with an IPv4 socket (native or
        // DS-Lite) a winning IPv6 connection can leave the losing IPv4
        // attempt as a tiny flow.
        if family_v6
            && matches!(tech, AccessTech::NativeDualStack | AccessTech::DsLite)
            && self.rng.gen::<f64>() < self.ctx.config.he_both_flow_rate
        {
            let residue_ok = match tech {
                AccessTech::DsLite => match self.mode {
                    GatewayMode::Local => {
                        !self
                            .ctx
                            .config
                            .faults
                            .gateway_down(PoolTarget::Aftr, day, hour)
                            && self
                                .aftr
                                .as_mut()
                                .expect("DS-Lite line has an AFTR")
                                .admit(start, start + 2_000_000)
                                .is_ok()
                    }
                    GatewayMode::Provider => true,
                },
                _ => true,
            };
            if residue_ok {
                // The residue is the *same host's* losing IPv4 attempt, so
                // it must originate from the device that won over v6.
                let src4 = src_v4.expect("v6 emission recorded its device");
                let v4dst = svc.v4[self.rng.gen_range(0..svc.v4.len())];
                let k = FlowKey::tcp(
                    IpAddr::V4(src4),
                    self.sports.companion_port(start),
                    v4dst,
                    443,
                );
                self.emit(k, start, start + 2_000_000, 300, 300);
            }
        }
        true
    }
}

/// Synthesize one day of one residence into `sink`. Pure function of
/// `(config.seed, residence_index, day)` plus the world; returns the
/// day-local gateway counters when the technology and mode use one, plus
/// the day's fault-plane casualties (all-zero under an empty plan).
pub(crate) fn synthesize_day_into<S: FlowSink>(
    ctx: &ResidenceCtx<'_>,
    day: u32,
    mode: GatewayMode,
    sink: &mut S,
) -> (Option<GatewayStats>, DropCounters) {
    let _span = obs::span!("day", day = day);
    let config = ctx.config;
    let setup = ctx.setup;
    let profile = &setup.profile;
    let tech = profile.access_tech;
    let services = &ctx.world.client_services;
    let resolver = Resolver::new(&ctx.world.client_zone);
    let nat64_prefix = ctx.world.transition.nat64_prefix;
    let dns64 = Dns64::new(resolver, nat64_prefix);
    let he = HappyEyeballs::new(config.he);
    let plan = &config.faults;
    // Scheduled pool shrink: the day-local gateways are built with today's
    // effective capacity (restored automatically on uncovered days).
    let gateway_config = if plan.is_empty() {
        config.gateway
    } else {
        GatewayConfig {
            capacity: plan.pool_capacity(config.gateway.capacity, day),
            ..config.gateway
        }
    };

    obs::counter_add("synth.day_streams", 1);
    let mut rng = SmallRng::seed_from_u64(day_seed(config.seed, setup.residence_index, day));

    let mut router = RouterMonitor::new(vec![setup.lan4], vec![setup.lan6]);
    let mut xlat = TranslationMap::new();
    if tech.v6_only_wire() {
        xlat.add_nat64_prefix(nat64_prefix.prefix());
    }
    xlat.set_dslite_b4(tech == AccessTech::DsLite);
    router.set_translation_map(xlat);

    let weekday = day % 7;
    let absent = profile.absences.iter().any(|&(a, b)| day >= a && day <= b);

    // Per-day network health. On a v6-outage day a line whose IPv4 also
    // rides IPv6 (v6-only, DS-Lite) loses everything.
    let outage = rng.gen::<f64>() < profile.v6_outage_day_rate;
    let total_outage = outage && (tech.v6_only_wire() || tech == AccessTech::DsLite);
    let base_ms = 18 + rng.gen_range(0..20);
    let mut net = Network::dual_stack_ms(base_ms);
    match tech {
        AccessTech::NativeDualStack => {
            if profile.v6_tunnel {
                net.set_family_default(
                    Family::V6,
                    PathProfile {
                        rtt: (60 + rng.gen_range(0..30)) * MILLIS,
                        loss: 0.002,
                        reachable: true,
                    },
                );
            }
        }
        AccessTech::V4Only => net.set_family_default(Family::V6, PathProfile::unreachable()),
        AccessTech::Ipv6OnlyNat64 | AccessTech::Xlat464 => {
            // No IPv4 on the wire at all; translated destinations pay the
            // gateway detour.
            net.set_family_default(Family::V4, PathProfile::unreachable());
            net.set_prefix6(
                nat64_prefix.prefix(),
                PathProfile {
                    rtt: (base_ms + 8) * MILLIS,
                    loss: 0.0,
                    reachable: true,
                },
            );
        }
        AccessTech::DsLite => {
            // IPv4 rides the softwire: a couple of ms of AFTR detour.
            net.set_family_default(
                Family::V4,
                PathProfile {
                    rtt: (base_ms + 6) * MILLIS,
                    loss: 0.0,
                    reachable: true,
                },
            );
        }
    }
    if outage {
        net.set_family_default(Family::V6, PathProfile::unreachable());
        if total_outage {
            net.set_family_default(Family::V4, PathProfile::unreachable());
        }
    }

    // Scheduled path degradation: stack extra latency/loss onto today's
    // family default (the unspecified address reads it back — no prefix
    // route covers 0.0.0.0/::). Unreachable families stay unreachable;
    // windows narrower than the day still degrade the whole day's races,
    // matching the day-granular health model. Pure arithmetic, no RNG.
    if !plan.is_empty() {
        for f in plan.path_for_day(day) {
            let probe = match f.family {
                Family::V4 => IpAddr::V4(Ipv4Addr::UNSPECIFIED),
                Family::V6 => IpAddr::V6(Ipv6Addr::UNSPECIFIED),
            };
            let cur = net.path_to(probe);
            if cur.reachable && (f.extra_rtt_ms > 0 || f.loss > 0.0) {
                net.set_family_default(
                    f.family,
                    PathProfile {
                        rtt: cur.rtt + f.extra_rtt_ms * MILLIS,
                        loss: (cur.loss + f.loss).min(1.0),
                        reachable: true,
                    },
                );
            }
        }
    }

    // Injected DNS bursts wrap today's resolver (the DNS64 view on v6-only
    // wires, the plain stub elsewhere) for the health races. Built only
    // when bursts cover the day — rule 1 of the determinism contract: an
    // empty plan constructs nothing and draws nothing.
    let dns_bursts = if plan.is_empty() {
        Vec::new()
    } else {
        plan.dns_for_day(day)
    };
    let faulty: Option<FaultyResolver<&dyn ResolveAddrs>> = (!dns_bursts.is_empty()).then(|| {
        let inner: &dyn ResolveAddrs = if tech.v6_only_wire() {
            &dns64
        } else {
            &resolver
        };
        FaultyResolver::new(
            inner,
            dns_bursts,
            plan.stream(DNS_STREAM, setup.residence_index, day),
        )
    });
    let mut day_drops = DropCounters::default();

    // One Happy Eyeballs race per service per day decides whether IPv6 (or,
    // behind DNS64, the translated path) is usable towards that service.
    let v6_usable: Vec<bool> = services
        .iter()
        .map(|s| match tech {
            AccessTech::V4Only => false,
            AccessTech::Ipv6OnlyNat64 | AccessTech::Xlat464 => {
                if total_outage {
                    return false;
                }
                let fqdn = Name::new(&format!("edge0.{}", s.service.domain));
                let race = match &faulty {
                    Some(f) => he.connect(&net, f, &mut rng, &fqdn, 0),
                    None => he.connect(&net, &dns64, &mut rng, &fqdn, 0),
                };
                let usable = race.winning_family() == Some(Family::V6);
                if !usable && faulty.is_some() {
                    // On a v6-only wire a lost race blacks the service out
                    // for the day; under an active burst, attribute it.
                    day_drops.record(DropCause::DnsFailure);
                }
                usable
            }
            _ => {
                if s.v6.is_empty() {
                    return false;
                }
                let fqdn = Name::new(&format!("edge0.{}", s.service.domain));
                let race = match &faulty {
                    Some(f) => he.connect(&net, f, &mut rng, &fqdn, 0),
                    None => he.connect(&net, &resolver, &mut rng, &fqdn, 0),
                };
                race.winning_family() == Some(Family::V6)
            }
        })
        .collect();

    // Per-day service mix jitter (lognormal), plus event days.
    let mut day_weights: Vec<f64> = setup
        .base_weights
        .iter()
        .zip(services.iter())
        .map(|(w, s)| {
            let jitter = lognormal(&mut rng, 1.0, profile.day_mix_sigma);
            let absence_damp = if absent && s.service.kind.human_driven() {
                0.03
            } else {
                1.0
            };
            w * jitter * absence_damp
        })
        .collect();
    let mut day_gb = profile.daily_external_gb * lognormal(&mut rng, 1.0, 0.35);
    if absent {
        day_gb *= 0.25; // only background traffic remains
    }
    for ev in profile.events {
        if rng.gen::<f64>() < ev.probability {
            if let Some(idx) = services.iter().position(|s| s.service.key == ev.service) {
                let extra_gb = ev.gb_mean * lognormal(&mut rng, 1.0, 0.4);
                let wsum: f64 = day_weights.iter().sum();
                // Make the event service dominate the (enlarged) day.
                day_weights[idx] += wsum * (extra_gb / day_gb.max(0.01));
                day_gb += extra_gb;
            }
        }
    }
    let weight_sum: f64 = day_weights.iter().sum();

    let mut run = DayRun {
        ctx,
        rng,
        router,
        sports: SportAlloc::new(10_000, day as u64 * DAY_US),
        mode,
        nat64: (mode == GatewayMode::Local && tech.v6_only_wire())
            .then(|| Nat64Gateway::new(nat64_prefix, gateway_config)),
        aftr: (mode == GatewayMode::Local && tech == AccessTech::DsLite)
            .then(|| Aftr::new(gateway_config)),
        faults: (!plan.is_empty()).then(|| DayFaults {
            rng: plan.stream(FLOW_DROP_STREAM, setup.residence_index, day),
            path: plan.path_for_day(day),
        }),
        drops: day_drops,
        sink,
    };

    // Opt-in per-(day, service) streams: each service's external emission
    // draws from a stream seeded by (residence, day, service), swapped into
    // `run.rng` around that service's grid cell. Day-level randomness (HE
    // races, day weights, ICMP, internal chatter) stays on the day stream.
    let mut svc_rngs: Vec<SmallRng> = if config.service_streams {
        (0..services.len())
            .map(|si| {
                SmallRng::seed_from_u64(service_seed(config.seed, setup.residence_index, day, si))
            })
            .collect()
    } else {
        Vec::new()
    };

    // Byte/flow-mass accumulators per (service, family bucket): hours whose
    // sampled flow expectation is below one record carry their bytes
    // forward within the day instead of dropping them (dropping would bias
    // fractions against big-flow services, which are disproportionately the
    // IPv6-heavy streamers). Flushed at day end so days stay independent.
    let mut pending_bytes = vec![[0.0f64; 2]; services.len()];
    let mut pending_flows = vec![[0.0f64; 2]; services.len()];

    for hour in 0..24u32 {
        for (si, svc) in services.iter().enumerate() {
            // A v6-only line with no usable path today drops the service's
            // traffic entirely (nothing can leave the residence).
            if tech.v6_only_wire() && !v6_usable[si] {
                continue;
            }
            if total_outage {
                continue;
            }
            let hour_w = if svc.service.kind.human_driven() {
                human_hour_weight(hour, weekday)
            } else {
                1.0
            };
            // Normalize the hour profile so a day's weights integrate
            // to ~1 across 24 hours (human weights sum to ~12.7).
            let hour_norm = if svc.service.kind.human_driven() {
                12.7
            } else {
                24.0
            };
            let svc_hour_bytes =
                day_gb * 1e9 * (day_weights[si] / weight_sum) * (hour_w / hour_norm);
            let mean_flow = svc.service.kind.mean_flow_bytes();
            // Deterministic byte split. On native/DS-Lite lines the IPv6
            // share of this hour's bytes is fixed by the service's
            // propensity, the residence factor, today's Happy Eyeballs
            // outcome and the dual-stack device share. On IPv6-only lines
            // everything leaves as IPv6 and the split is native-v6 vs
            // translated: traffic to services without native AAAA rides the
            // NAT64 (the "false" bucket), as does the CLAT literal share on
            // 464XLAT. Sampling only decides how many flow *records* carry
            // those bytes, so byte fractions stay tight even at aggressive
            // sampling scales.
            let p_v6 = match tech {
                AccessTech::V4Only => 0.0,
                AccessTech::Ipv6OnlyNat64 => {
                    if svc.v6.is_empty() {
                        0.0
                    } else {
                        1.0
                    }
                }
                AccessTech::Xlat464 => {
                    if svc.v6.is_empty() {
                        0.0
                    } else {
                        1.0 - CLAT_LITERAL_SHARE
                    }
                }
                _ => {
                    if v6_usable[si] {
                        (svc.service.v6_share * setup.residence_factor).min(0.98) * setup.dual_share
                    } else {
                        0.0
                    }
                }
            };
            if config.service_streams {
                std::mem::swap(&mut run.rng, &mut svc_rngs[si]);
            }
            for (family_v6, bytes_real) in [
                (true, svc_hour_bytes * p_v6),
                (false, svc_hour_bytes * (1.0 - p_v6)),
            ] {
                let fam = family_v6 as usize;
                pending_bytes[si][fam] += bytes_real * config.scale;
                pending_flows[si][fam] += (bytes_real / mean_flow) * config.scale;
                let n_rec = poisson(&mut run.rng, pending_flows[si][fam]);
                if n_rec == 0 {
                    continue;
                }
                let bytes_sampled = pending_bytes[si][fam];
                pending_bytes[si][fam] = 0.0;
                pending_flows[si][fam] = 0.0;
                // Distribute the hour's sampled bytes over the records
                // with lognormal weights (realistic sizes, exact total).
                let weights: Vec<f64> = (0..n_rec)
                    .map(|_| lognormal(&mut run.rng, 1.0, 0.9))
                    .collect();
                let wsum: f64 = weights.iter().sum();
                for w in weights {
                    let bytes = ((bytes_sampled * w / wsum).max(200.0)) as u64;
                    run.emit_external(svc, family_v6, bytes, day, hour);
                }
            }
            if config.service_streams {
                std::mem::swap(&mut run.rng, &mut svc_rngs[si]);
            }
        }

        // ICMP probes: CPE keepalives and user pings — the monitor
        // tracks ICMP by type/code/id exactly like conntrack (§3.1).
        if !total_outage {
            let n_icmp = poisson(&mut run.rng, 6.0 * config.scale.min(1.0) * 50.0);
            for _ in 0..n_icmp {
                let device = &setup.devices[run.rng.gen_range(0..setup.devices.len())];
                let svc = &services[run.rng.gen_range(0..services.len())];
                let use_v6 = match tech {
                    AccessTech::V4Only => false,
                    AccessTech::Ipv6OnlyNat64 | AccessTech::Xlat464 => true,
                    _ => device.dual_stack && !svc.v6.is_empty() && run.rng.gen::<f64>() < 0.5,
                };
                let start =
                    day as u64 * DAY_US + hour as u64 * HOUR_US + run.rng.gen_range(0..HOUR_US);
                let (src, dst) = if use_v6 {
                    let dst = if svc.v6.is_empty() {
                        // v6-only line pinging a v4-only service: the probe
                        // rides the translator like any other flow — an
                        // ICMP-ID binding, subject to the same pool.
                        let IpAddr::V4(d4) = svc.v4[run.rng.gen_range(0..svc.v4.len())] else {
                            unreachable!("service v4 pool holds IPv4 addresses");
                        };
                        match run.mode {
                            GatewayMode::Local => {
                                if run
                                    .ctx
                                    .config
                                    .faults
                                    .gateway_down(PoolTarget::Nat64, day, hour)
                                {
                                    run.drops.record(DropCause::GatewayOutage);
                                    continue;
                                }
                                let gw = run.nat64.as_mut().expect("v6-only line has a NAT64");
                                match gw.translate(d4, start, start + 1_000_000) {
                                    Ok(d6) => IpAddr::V6(d6),
                                    Err(_) => {
                                        // pool exhausted: probe lost
                                        run.drops.record(DropCause::PoolExhausted);
                                        continue;
                                    }
                                }
                            }
                            GatewayMode::Provider => IpAddr::V6(nat64_prefix.embed(d4)),
                        }
                    } else {
                        svc.v6[run.rng.gen_range(0..svc.v6.len())]
                    };
                    (IpAddr::V6(device.v6), dst)
                } else {
                    // DS-Lite: the tunneled v4 probe needs an AFTR binding
                    // like any other softwire flow.
                    if tech == AccessTech::DsLite && run.mode == GatewayMode::Local {
                        if run
                            .ctx
                            .config
                            .faults
                            .gateway_down(PoolTarget::Aftr, day, hour)
                        {
                            run.drops.record(DropCause::GatewayOutage);
                            continue;
                        }
                        let aftr = run.aftr.as_mut().expect("DS-Lite line has an AFTR");
                        if aftr.admit(start, start + 1_000_000).is_err() {
                            run.drops.record(DropCause::PoolExhausted);
                            continue;
                        }
                    }
                    (
                        IpAddr::V4(device.v4),
                        svc.v4[run.rng.gen_range(0..svc.v4.len())],
                    )
                };
                let key = FlowKey::icmp(
                    src,
                    dst,
                    flowmon::IcmpMeta {
                        icmp_type: 8,
                        icmp_code: 0,
                        icmp_id: run.rng.gen(),
                    },
                );
                run.emit(key, start, start + 1_000_000, 64 * 4, 64 * 4);
            }
        }

        // Internal traffic: many tiny discovery flows plus occasional
        // bulk transfers between devices. Link-local/ULA IPv6 works
        // whatever the access technology — which is why the paper finds
        // internal and external fractions uncorrelated.
        let int_bytes_hour =
            profile.daily_external_gb * 1e9 * profile.internal_byte_fraction / 24.0;
        // Mean internal flow ≈ 11 kB: mostly tiny discovery chatter with
        // 2% bulk transfers around 300 kB.
        let n_int = poisson(&mut run.rng, int_bytes_hour / 11_000.0 * config.scale);
        for _ in 0..n_int {
            let a = &setup.devices[run.rng.gen_range(0..setup.devices.len())];
            let b = &setup.devices[run.rng.gen_range(0..setup.devices.len())];
            let use_v6 = run.rng.gen::<f64>() < profile.internal_v6_share;
            let bulk = run.rng.gen::<f64>() < 0.02;
            let bytes = if bulk {
                lognormal(&mut run.rng, 300_000.0, 1.0) as u64
            } else {
                run.rng.gen_range(120..2_500)
            };
            let start = day as u64 * DAY_US + hour as u64 * HOUR_US + run.rng.gen_range(0..HOUR_US);
            let sport = run.sports.alloc(start, start + 1_000_000);
            let (src, dst) = if use_v6 {
                (IpAddr::V6(a.v6), IpAddr::V6(b.v6))
            } else {
                (IpAddr::V4(a.v4), IpAddr::V4(b.v4))
            };
            let key = FlowKey::udp(src, sport, dst, 5353);
            run.emit(key, start, start + 1_000_000, bytes, bytes / 4);
        }
    }

    // Day-end flush: days are independent, so residual byte mass cannot
    // carry over. An importance-weighted Bernoulli draw keeps the flush
    // unbiased in *both* moments the analyses read: the residue is emitted
    // with probability p = min(1, expected flows) and its bytes scaled by
    // 1/p, so E[flows] ≈ pending_flows and E[bytes] = pending_bytes
    // exactly — low-volume (service, family) buckets keep their long-run
    // byte share instead of losing it at every midnight.
    for (si, svc) in services.iter().enumerate() {
        if config.service_streams {
            std::mem::swap(&mut run.rng, &mut svc_rngs[si]);
        }
        for fam in 0..2 {
            let p = pending_flows[si][fam].min(1.0);
            if p > 0.0 && pending_bytes[si][fam] >= 1.0 && run.rng.gen::<f64>() < p {
                let bytes = (pending_bytes[si][fam] / p) as u64;
                run.emit_external(svc, fam == 1, bytes, day, 23);
            }
        }
        if config.service_streams {
            std::mem::swap(&mut run.rng, &mut svc_rngs[si]);
        }
    }

    let stats = run
        .nat64
        .as_ref()
        .map(|g| g.stats())
        .or_else(|| run.aftr.as_ref().map(|a| a.stats()));
    if let Some(s) = &stats {
        // Day-local gateways: one high-water sample per (residence, day) —
        // a pure function of the day's deterministic offer stream.
        obs::hist_record("gateway.pool_day_peak", s.peak_active as u64);
        obs::gauge_max("gateway.pool_peak_active", s.peak_active as u64);
    }
    (stats, run.drops)
}

pub(crate) struct Device {
    pub(crate) v4: Ipv4Addr,
    pub(crate) v6: Ipv6Addr,
    pub(crate) dual_stack: bool,
}

fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (median.ln() + sigma * n).exp()
}

fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 50.0 {
        // Normal approximation for large means.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (mean + mean.sqrt() * n).round().max(0.0) as usize;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmon::Scope;
    use worldgen::WorldConfig;

    fn dataset() -> ResidenceDataset {
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        synthesize_residence(&world, profiles[0].clone(), &TrafficConfig::fast(), 0)
    }

    #[test]
    fn produces_flows_with_both_scopes_and_families() {
        let ds = dataset();
        assert!(ds.flows.len() > 1_000, "got {} flows", ds.flows.len());
        let ext = ds
            .flows
            .iter()
            .filter(|f| f.scope == Scope::External)
            .count();
        let int = ds
            .flows
            .iter()
            .filter(|f| f.scope == Scope::Internal)
            .count();
        assert!(ext > 0 && int > 0);
        let v6 = ds.flows.iter().filter(|f| f.family() == Family::V6).count();
        let v4 = ds.flows.iter().filter(|f| f.family() == Family::V4).count();
        assert!(v6 > 0 && v4 > 0);
        assert!(ds.gateway.is_none(), "dual-stack line uses no gateway");
    }

    #[test]
    fn external_v6_byte_fraction_near_target() {
        let ds = dataset();
        let (mut v6b, mut tot) = (0f64, 0f64);
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            let b = f.total_bytes() as f64;
            tot += b;
            if f.family() == Family::V6 {
                v6b += b;
            }
        }
        let frac = v6b / tot;
        let target = ds.profile.target_ext_v6_bytes;
        assert!(
            (frac - target).abs() < 0.15,
            "v6 byte fraction {frac:.3} vs target {target:.3}"
        );
    }

    #[test]
    fn diurnal_pattern_present() {
        // Needs a dense sample: at very sparse scales the byte-conserving
        // carryover smears hours (bytes from a quiet hour ride the next
        // emitted flow).
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let cfg = TrafficConfig {
            num_days: 14,
            scale: 1.0 / 100.0,
            ..TrafficConfig::fast()
        };
        let ds = synthesize_residence(&world, profiles[0].clone(), &cfg, 0);
        // External bytes by hour-of-day: evening must beat pre-dawn.
        let mut by_hour = [0u64; 24];
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            let hour = (f.start % DAY_US) / HOUR_US;
            by_hour[hour as usize] += f.total_bytes();
        }
        let night: u64 = (1..=5).map(|h| by_hour[h]).sum();
        let evening: u64 = (19..=23).map(|h| by_hour[h]).sum();
        assert!(
            evening > night * 5 / 2,
            "evening {evening} vs night {night}"
        );
    }

    #[test]
    fn absence_days_dip() {
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let cfg = TrafficConfig {
            num_days: 150,
            ..TrafficConfig::fast()
        };
        let ds = synthesize_residence(&world, profiles[0].clone(), &cfg, 0);
        let mut by_day = vec![0u64; 150];
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            by_day[(f.start / DAY_US) as usize] += f.total_bytes();
        }
        let absent_avg: f64 = (135..=138).map(|d| by_day[d] as f64).sum::<f64>() / 4.0;
        let normal_avg: f64 = (100..130).map(|d| by_day[d] as f64).sum::<f64>() / 30.0;
        assert!(
            absent_avg < normal_avg * 0.6,
            "absence {absent_avg:.0} vs normal {normal_avg:.0}"
        );
    }

    #[test]
    fn he_residue_flows_exist() {
        let ds = dataset();
        // Tiny v4 TCP flows (~600 bytes total) are the HE losing attempts.
        let residue = ds
            .flows
            .iter()
            .filter(|f| {
                f.family() == Family::V4 && f.scope == Scope::External && f.total_bytes() == 600
            })
            .count();
        assert!(residue > 10, "expected HE residue flows, got {residue}");
    }

    #[test]
    fn deterministic() {
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let a = synthesize_residence(&world, profiles[1].clone(), &TrafficConfig::fast(), 1);
        let b = synthesize_residence(&world, profiles[1].clone(), &TrafficConfig::fast(), 1);
        assert_eq!(a.flows.len(), b.flows.len());
        assert_eq!(a.flows.first(), b.flows.first());
        assert_eq!(a.flows.last(), b.flows.last());
    }

    #[test]
    fn synthesize_all_identical_at_any_thread_count() {
        let world = World::generate(&WorldConfig::small());
        let cfg = TrafficConfig {
            num_days: 20,
            ..TrafficConfig::fast()
        };
        let seq = synthesize_all(
            &world,
            &TrafficConfig {
                threads: 1,
                ..cfg.clone()
            },
        );
        let par = synthesize_all(
            &world,
            &TrafficConfig {
                threads: 4,
                ..cfg.clone()
            },
        );
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.profile.key, b.profile.key);
            assert_eq!(a.flows, b.flows, "residence {} differs", a.profile.key);
        }
    }

    #[test]
    fn residence_identical_at_any_day_thread_count() {
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let cfg = TrafficConfig {
            num_days: 20,
            ..TrafficConfig::fast()
        };
        let seq = synthesize_residence(
            &world,
            profiles[0].clone(),
            &TrafficConfig {
                day_threads: 1,
                ..cfg.clone()
            },
            0,
        );
        let par = synthesize_residence(
            &world,
            profiles[0].clone(),
            &TrafficConfig {
                day_threads: 5,
                ..cfg.clone()
            },
            0,
        );
        assert_eq!(seq.flows, par.flows, "day-parallel output differs");
        // And a translated residence (gateway state is per-day, so its
        // stats must agree too).
        let cohort = crate::profile::transition_residences();
        let nat64 = cohort
            .iter()
            .find(|p| p.access_tech == AccessTech::Ipv6OnlyNat64)
            .unwrap();
        let s1 = synthesize_residence(
            &world,
            nat64.clone(),
            &TrafficConfig {
                day_threads: 1,
                ..cfg.clone()
            },
            2,
        );
        let s4 = synthesize_residence(
            &world,
            nat64.clone(),
            &TrafficConfig {
                day_threads: 4,
                ..cfg.clone()
            },
            2,
        );
        assert_eq!(s1.flows, s4.flows);
        let (g1, g4) = (s1.gateway.unwrap(), s4.gateway.unwrap());
        assert_eq!(g1.granted, g4.granted);
        assert_eq!(g1.rejected, g4.rejected);
        assert_eq!(g1.peak_active, g4.peak_active);
    }

    #[test]
    fn service_streams_identical_at_any_layout() {
        // The per-(day, service) schedule must hold the same contract the
        // per-(residence, day) schedule does: byte-identical output at any
        // threads × day_threads layout.
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let cfg = |threads: usize, day_threads: usize| TrafficConfig {
            num_days: 20,
            service_streams: true,
            threads,
            day_threads,
            ..TrafficConfig::fast()
        };
        let seq = synthesize_residence(&world, profiles[0].clone(), &cfg(1, 1), 0);
        for (threads, day_threads) in [(1, 5), (4, 3)] {
            let par =
                synthesize_residence(&world, profiles[0].clone(), &cfg(threads, day_threads), 0);
            assert_eq!(
                seq.flows, par.flows,
                "service streams differ at {threads}x{day_threads}"
            );
        }
        // The dedicated streams must actually engage: the layout change is
        // observable against the shared day stream...
        let shared = synthesize_residence(
            &world,
            profiles[0].clone(),
            &TrafficConfig {
                num_days: 20,
                ..TrafficConfig::fast()
            },
            0,
        );
        assert_ne!(seq.flows, shared.flows, "flag on must change the draws");
        // ...while leaving aggregate behavior calibrated: same order of
        // magnitude of flows either way.
        assert!(seq.flows.len() * 2 > shared.flows.len());
        assert!(shared.flows.len() * 2 > seq.flows.len());
    }

    #[test]
    fn v6only_line_emits_only_v6_external_flows() {
        let world = World::generate(&WorldConfig::small());
        let cohort = crate::profile::transition_residences();
        let nat64 = cohort
            .iter()
            .find(|p| p.access_tech == AccessTech::Ipv6OnlyNat64)
            .unwrap();
        let ds = synthesize_residence(&world, nat64.clone(), &TrafficConfig::fast(), 2);
        let prefix = world.transition.nat64_prefix;
        let mut translated = 0usize;
        let mut native = 0usize;
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            assert_eq!(
                f.family(),
                Family::V6,
                "nothing leaves a v6-only line as IPv4: {:?}",
                f.key
            );
            match f.key.dst {
                IpAddr::V6(d) if prefix.contains(d) => translated += 1,
                _ => native += 1,
            }
        }
        assert!(translated > 0, "v4-only services must ride the NAT64");
        assert!(native > 0, "dual-stack services stay native");
        let gw = ds.gateway.expect("NAT64 line reports gateway stats");
        assert_eq!(
            gw.granted, translated as u64,
            "every translated flow — TCP, UDP and ICMP alike — holds a binding"
        );
    }

    #[test]
    fn dslite_line_keeps_v4_flows_and_uses_aftr() {
        let world = World::generate(&WorldConfig::small());
        let cohort = crate::profile::transition_residences();
        let dslite = cohort
            .iter()
            .find(|p| p.access_tech == AccessTech::DsLite)
            .unwrap();
        let ds = synthesize_residence(&world, dslite.clone(), &TrafficConfig::fast(), 4);
        let ext_v4 = ds
            .flows
            .iter()
            .filter(|f| f.scope == Scope::External && f.family() == Family::V4)
            .count();
        assert!(ext_v4 > 0, "tunneled IPv4 still appears as IPv4 flows");
        let gw = ds.gateway.expect("AFTR stats present");
        assert!(gw.granted > 0);
    }

    #[test]
    fn nat64_pool_exhaustion_rejects_flows() {
        let world = World::generate(&WorldConfig::small());
        let cohort = crate::profile::transition_residences();
        let nat64 = cohort
            .iter()
            .find(|p| p.access_tech == AccessTech::Ipv6OnlyNat64)
            .unwrap();
        let tiny_pool = TrafficConfig {
            num_days: 20,
            gateway: GatewayConfig {
                capacity: 2,
                binding_timeout: 3_600_000_000, // one hour: bindings pile up
            },
            ..TrafficConfig::fast()
        };
        let ds = synthesize_residence(&world, nat64.clone(), &tiny_pool, 2);
        let gw = ds.gateway.expect("gateway stats");
        assert!(gw.rejected > 0, "a 2-binding pool must exhaust");
        assert_eq!(gw.peak_active, 2);
        let roomy = TrafficConfig {
            num_days: 20,
            ..TrafficConfig::fast()
        };
        let ok = synthesize_residence(&world, nat64.clone(), &roomy, 2)
            .gateway
            .expect("gateway stats");
        assert!(
            ok.rejection_rate() < gw.rejection_rate(),
            "default pool rejects less than the tiny pool"
        );
    }

    #[test]
    fn large_residence_indices_get_distinct_lans() {
        // ISP-scale cohorts pass the 255-residence boundary of the
        // historical 192.168.<idx> scheme; the spill plan must keep
        // producing valid, mutually distinct LANs (regression: index 255+
        // used to panic on an unparseable prefix).
        let world = World::generate(&WorldConfig::small());
        let profile = crate::profile::isp_cohort(1).remove(0);
        let cfg = TrafficConfig {
            num_days: 3,
            scale: 1.0 / 100.0, // dense enough that internal flows appear
            ..TrafficConfig::fast()
        };
        let mut lans = std::collections::BTreeSet::new();
        for idx in [0u64, 254, 255, 256, 511, 4_000] {
            let setup = ResidenceSetup::build(&world, &cfg, profile.clone(), idx);
            assert!(
                lans.insert((setup.lan4.to_string(), setup.lan6.to_string())),
                "index {idx} reuses a LAN"
            );
        }
        // And a past-the-boundary residence synthesizes end to end with
        // internal (LAN↔LAN) traffic still scoped correctly.
        let ds = synthesize_residence(&world, profile, &cfg, 300);
        assert!(ds.flows.iter().any(|f| f.scope == Scope::Internal));
        assert!(ds.flows.iter().any(|f| f.scope == Scope::External));
    }

    #[test]
    fn sport_alloc_skips_ports_held_across_a_wrap() {
        // Regression: the historical cursor reissued a port after one lap
        // of the 1024..=65535 ring even when the earlier flow on that port
        // was still alive, merging two distinct flows' 5-tuples.
        let ring = 65_535 - 1_024 + 1; // 64 512 ports
        let mut a = SportAlloc::new(10_000, 0);
        // A long-lived flow holds the first issued port for two hours.
        let first = a.alloc(0, 2 * HOUR_US);
        assert_eq!(first, 10_001, "cursor sequence must match the old seed");
        // 64 511 short flows lap the rest of the ring.
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(first);
        for i in 0..(ring - 1) as u64 {
            let start = 10_000_000 + i;
            let p = a.alloc(start, start + 1);
            assert!(p >= 1_024);
            assert!(seen.insert(p), "port {p} reissued within the first lap");
        }
        // The wrap: the next allocation lands while `first`'s flow is still
        // alive — it must skip 10_001 (the old allocator reissued it).
        let p = a.alloc(HOUR_US, HOUR_US + 1);
        assert_ne!(p, first, "in-use port reissued after wrap");
        assert_eq!(p, 10_002, "first *free* port after the held one");
        // Once the long flow has ended its port is reusable again.
        let mut b = SportAlloc::new(10_000, 0);
        b.alloc(0, 1); // short flow on 10_001
        for i in 0..(ring - 1) as u64 {
            b.alloc(10_000_000 + i, 10_000_000 + i + 1);
        }
        assert_eq!(b.alloc(3 * HOUR_US, 3 * HOUR_US + 1), 10_001);
    }

    #[test]
    fn companion_port_keeps_offset_but_skips_live_holders() {
        let mut a = SportAlloc::new(10_000, 0);
        let sport = a.alloc(0, 1_000_000);
        // First lap, nothing ahead of the cursor is busy: the historical
        // `sport + 7` offset is preserved exactly.
        assert_eq!(a.companion_port(0), sport + 7);
        // Simulate the post-lap state the fix targets: the offset port is
        // still held by a long-lived flow from the previous lap. The
        // companion must skip past it instead of sharing the 5-tuple.
        a.busy_until[(sport + 7) as usize] = (3 * HOUR_US / SPORT_TICK_US + 1) as u16;
        let companion = a.companion_port(2 * HOUR_US);
        assert_ne!(companion, sport + 7, "companion shared a live port");
        assert_eq!(companion, sport + 8, "first free port past the holder");
        // Once the holder's flow has ended, the offset is reusable.
        assert_eq!(a.companion_port(4 * HOUR_US), sport + 7);
    }

    #[test]
    fn sport_alloc_first_lap_matches_historical_cursor() {
        // Byte-identity guarantee: before any wrap the sequence is exactly
        // the old `wrapping_add(1).max(1024)` cursor.
        let mut a = SportAlloc::new(10_000, 0);
        let mut old = 10_000u16;
        for i in 0..60_000u64 {
            old = old.wrapping_add(1).max(1024);
            assert_eq!(a.alloc(i, i + 1), old);
        }
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        // Rule 1 of the faults determinism contract: a seeded-but-empty
        // plan perturbs nothing, at every day-thread layout.
        let world = World::generate(&WorldConfig::small());
        let cohort = crate::profile::transition_residences();
        let nat64 = cohort
            .iter()
            .find(|p| p.access_tech == AccessTech::Ipv6OnlyNat64)
            .unwrap();
        let base_cfg = TrafficConfig {
            num_days: 12,
            ..TrafficConfig::fast()
        };
        let base = synthesize_residence(&world, nat64.clone(), &base_cfg, 2);
        for day_threads in [1usize, 4] {
            let cfg = TrafficConfig {
                faults: faults::FaultPlan::new(0xdead_beef),
                day_threads,
                ..base_cfg.clone()
            };
            let ds = synthesize_residence(&world, nat64.clone(), &cfg, 2);
            assert_eq!(
                ds.flows, base.flows,
                "empty plan perturbed output at day_threads={day_threads}"
            );
            assert!(ds.drops.is_empty(), "empty plan cannot drop flows");
        }
    }

    fn stress_plan() -> faults::FaultPlan {
        use faults::{DnsFailure, Window};
        faults::FaultPlan::new(0xfa17)
            .dns_burst(DnsFailure::ServFail, 0.7, Window::days(2, 4))
            .gateway_outage(PoolTarget::Both, Window::new(5, 6, 8, 20))
            .pool_shrink(0.05, Window::days(7, 8))
            .path_degrade(Family::V6, 80, 0.2, 0.3, Window::days(9, 11))
    }

    #[test]
    fn fault_plan_output_is_layout_invariant_and_differs_from_clean() {
        // Rules 2–3: a scheduled plan changes what it schedules, from
        // dedicated streams, identically at every layout.
        let world = World::generate(&WorldConfig::small());
        let cohort = crate::profile::transition_residences();
        let nat64 = cohort
            .iter()
            .find(|p| p.access_tech == AccessTech::Ipv6OnlyNat64)
            .unwrap();
        let cfg = |day_threads: usize| TrafficConfig {
            num_days: 14,
            faults: stress_plan(),
            day_threads,
            ..TrafficConfig::fast()
        };
        let a = synthesize_residence(&world, nat64.clone(), &cfg(1), 2);
        let b = synthesize_residence(&world, nat64.clone(), &cfg(5), 2);
        assert_eq!(a.flows, b.flows, "faulted output differs across layouts");
        assert_eq!(a.drops, b.drops);
        assert!(
            a.drops.get(DropCause::GatewayOutage) > 0,
            "outage window must reject flows: {:?}",
            a.drops
        );
        assert!(
            a.drops.get(DropCause::PathLoss) > 0,
            "drop_rate must eat established flows: {:?}",
            a.drops
        );
        assert!(
            a.drops.get(DropCause::DnsFailure) > 0,
            "a 70% SERVFAIL burst must lose some races: {:?}",
            a.drops
        );
        let clean = synthesize_residence(
            &world,
            nat64.clone(),
            &TrafficConfig {
                num_days: 14,
                ..TrafficConfig::fast()
            },
            2,
        );
        assert_ne!(a.flows, clean.flows, "the stress plan must leave a mark");
    }

    #[test]
    fn pool_shrink_days_reject_more_than_clean_days() {
        let world = World::generate(&WorldConfig::small());
        let cohort = crate::profile::transition_residences();
        let nat64 = cohort
            .iter()
            .find(|p| p.access_tech == AccessTech::Ipv6OnlyNat64)
            .unwrap();
        let cfg = TrafficConfig {
            num_days: 20,
            gateway: GatewayConfig {
                capacity: 40,
                binding_timeout: 3_600_000_000, // one hour: bindings pile up
            },
            faults: faults::FaultPlan::new(1).pool_shrink(0.05, faults::Window::days(5, 15)),
            ..TrafficConfig::fast()
        };
        let shrunk = synthesize_residence(&world, nat64.clone(), &cfg, 2);
        let clean = synthesize_residence(
            &world,
            nat64.clone(),
            &TrafficConfig {
                faults: faults::FaultPlan::default(),
                ..cfg.clone()
            },
            2,
        );
        let (gs, gc) = (shrunk.gateway.unwrap(), clean.gateway.unwrap());
        assert!(
            gs.rejected > gc.rejected,
            "a 2-binding shrink window must out-reject the 40-binding pool ({} vs {})",
            gs.rejected,
            gc.rejected
        );
        assert!(shrunk.drops.get(DropCause::PoolExhausted) > 0);
    }

    #[test]
    fn streaming_collect_sink_matches_materialized() {
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let cfg = TrafficConfig {
            num_days: 15,
            ..TrafficConfig::fast()
        };
        let ds = synthesize_residence(&world, profiles[2].clone(), &cfg, 2);
        let mut sink = CollectSink::new();
        let summary = synthesize_residence_into(&world, profiles[2].clone(), &cfg, 2, &mut sink);
        assert_eq!(sink.records, ds.flows);
        assert_eq!(summary.num_days, ds.num_days);
        assert_eq!(summary.profile.key, ds.profile.key);
    }

    #[test]
    fn streaming_aggregates_match_recomputed() {
        use flowmon::sink::{drain_into, ScopeFamilyAgg};
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let cfg = TrafficConfig {
            num_days: 12,
            ..TrafficConfig::fast()
        };
        let mut streamed = ScopeFamilyAgg::new(cfg.num_days);
        synthesize_residence_into(&world, profiles[0].clone(), &cfg, 0, &mut streamed);
        let ds = synthesize_residence(&world, profiles[0].clone(), &cfg, 0);
        let mut recomputed = ScopeFamilyAgg::new(cfg.num_days);
        drain_into(&ds.flows, &mut recomputed);
        assert_eq!(streamed, recomputed);
        assert!(streamed.overall(Scope::External).total_flows() > 0);
    }
}
