//! The traffic synthesizer: profiles × diurnal activity × Happy Eyeballs →
//! flow records.

use crate::profile::ResidenceProfile;
use dnssim::{Name, Resolver};
use flowmon::{FlowKey, FlowRecord, RouterMonitor};
use happyeyeballs::{HappyEyeballs, HappyEyeballsConfig};
use iputil::Family;
use netsim::{Network, PathProfile, MILLIS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use worldgen::clientsvc::ServiceKind;
use worldgen::World;

/// Microseconds per hour / day (local aliases to keep formulas readable).
const HOUR_US: u64 = 3_600_000_000;
const DAY_US: u64 = 24 * HOUR_US;

/// Traffic synthesis configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Master seed (per-residence RNGs derive from it).
    pub seed: u64,
    /// Days to simulate (the paper observes ~273: Nov 2024 – Aug 2025).
    pub num_days: u32,
    /// Flow/byte sampling factor: recorded flows ≈ real flows × scale. The
    /// paper's 110M-flow residences are impractical (and pointless) to
    /// materialize; fractions are scale-invariant and absolute totals are
    /// rescaled by 1/scale in reports.
    pub scale: f64,
    /// Probability that a winning IPv6 connection leaves a losing IPv4
    /// SYN-flow in the log (Happy Eyeballs both-families effect).
    pub he_both_flow_rate: f64,
    /// Happy Eyeballs parameters for the per-(day, service) health race.
    pub he: HappyEyeballsConfig,
    /// Worker threads for [`synthesize_all`] (1 = sequential). Residences
    /// derive independent RNGs from `(seed, index)`, so output is identical
    /// at any thread count — the same determinism contract `crawlsim`
    /// documents for its parallel crawl.
    pub threads: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x7e51de9ce,
            num_days: 273,
            scale: 1.0 / 1000.0,
            he_both_flow_rate: 0.13,
            he: HappyEyeballsConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1),
        }
    }
}

impl TrafficConfig {
    /// A fast configuration for tests/examples: 60 days at 1/2000 scale.
    pub fn fast() -> TrafficConfig {
        TrafficConfig {
            num_days: 60,
            scale: 1.0 / 2000.0,
            ..TrafficConfig::default()
        }
    }
}

/// The synthesized dataset of one residence.
#[derive(Debug)]
pub struct ResidenceDataset {
    /// The generating profile.
    pub profile: ResidenceProfile,
    /// All flow records (external + internal), in generation order.
    pub flows: Vec<FlowRecord>,
    /// The sampling factor that produced `flows`.
    pub scale: f64,
    /// Days simulated.
    pub num_days: u32,
}

/// Diurnal activity weight for human traffic: near-zero overnight, a
/// morning shoulder and an evening peak rising to midnight (the paper's
/// Fig 2 daily component).
fn human_hour_weight(hour: u32, weekday: u32) -> f64 {
    let base = match hour {
        0 => 0.55,
        1..=5 => 0.08,
        6..=8 => 0.35,
        9..=11 => 0.50, // mid-morning secondary peak
        12..=15 => 0.40,
        16..=18 => 0.70,
        19..=21 => 1.00,
        22..=23 => 0.95,
        _ => unreachable!(),
    };
    // Weak weekly pattern: slightly more daytime use on weekends.
    let weekend = weekday == 5 || weekday == 6;
    if weekend && (9..=18).contains(&hour) {
        base * 1.15
    } else {
        base
    }
}

/// Synthesize every residence, fanning residences out over
/// `config.threads` scoped worker threads.
///
/// The 273-day Table 1 / Fig 1 runs are residence-independent by
/// construction (each residence's RNG derives from `(seed, index)` alone),
/// so this scales with cores while producing byte-identical output at any
/// thread count.
pub fn synthesize_all(world: &World, config: &TrafficConfig) -> Vec<ResidenceDataset> {
    let profiles = crate::profile::paper_residences();
    let threads = config.threads.max(1).min(profiles.len().max(1));

    if threads == 1 {
        return profiles
            .into_iter()
            .enumerate()
            .map(|(i, p)| synthesize_residence(world, p, config, i as u64))
            .collect();
    }

    let mut slots: Vec<Option<ResidenceDataset>> = Vec::new();
    slots.resize_with(profiles.len(), || None);
    // Round-robin assignment: residence i runs on worker i % threads, so
    // heavy profiles spread across workers.
    let mut per_worker: Vec<Vec<(usize, ResidenceProfile, &mut Option<ResidenceDataset>)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (i, (p, slot)) in profiles.into_iter().zip(slots.iter_mut()).enumerate() {
        per_worker[i % threads].push((i, p, slot));
    }
    std::thread::scope(|scope| {
        for batch in per_worker {
            scope.spawn(move || {
                for (i, profile, slot) in batch {
                    *slot = Some(synthesize_residence(world, profile, config, i as u64));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every residence synthesized"))
        .collect()
}

/// Synthesize one residence's dataset.
pub fn synthesize_residence(
    world: &World,
    profile: ResidenceProfile,
    config: &TrafficConfig,
    residence_index: u64,
) -> ResidenceDataset {
    let mut rng = SmallRng::seed_from_u64(
        config
            .seed
            .wrapping_add(residence_index.wrapping_mul(0x9e3779b97f4a7c15)),
    );
    let services = &world.client_services;
    let resolver = Resolver::new(&world.client_zone);

    // LAN addressing: 192.168.<idx>.0/24 and a delegated /56.
    let lan4: iputil::prefix::Prefix4 = format!("192.168.{}.0/24", residence_index + 1)
        .parse()
        .expect("valid LAN prefix");
    let lan6: iputil::prefix::Prefix6 = format!("2001:db8:{:x}00::/56", residence_index + 1)
        .parse()
        .expect("valid LAN prefix");
    let mut router = RouterMonitor::new(vec![lan4], vec![lan6]);

    // Devices: ~3 per resident; some broken-v6 at Residence C.
    let n_devices = (profile.residents * 3).clamp(2, 24);
    let devices: Vec<Device> = (0..n_devices)
        .map(|i| Device {
            v4: lan4.host(10 + i as u64).expect("device fits"),
            v6: lan6.host(0x10 + i as u128).expect("device fits"),
            dual_stack: rng.gen::<f64>() >= profile.broken_v6_share,
        })
        .collect();

    // Base per-service weights (global × residence boosts).
    let base_weights: Vec<f64> = services
        .iter()
        .map(|s| {
            let boost = profile
                .mix_boosts
                .iter()
                .find(|(k, _)| *k == s.service.key)
                .map(|(_, b)| *b)
                .unwrap_or(1.0);
            s.service.weight * boost
        })
        .collect();

    // Residence factor: scales every service's IPv6 propensity so the
    // volume-weighted mix hits the residence target (the mechanism that
    // caps per-AS fractions at Residence C).
    let mix_v6: f64 = {
        let num: f64 = services
            .iter()
            .zip(&base_weights)
            .map(|(s, w)| w * s.service.v6_share)
            .sum();
        let den: f64 = base_weights.iter().sum();
        num / den
    };
    let dual_share = devices.iter().filter(|d| d.dual_stack).count() as f64 / n_devices as f64;
    let residence_factor = profile.target_ext_v6_bytes / (mix_v6 * dual_share).max(1e-9);

    // The residence's network path view for Happy Eyeballs health races.
    let he = HappyEyeballs::new(config.he);

    let mut flows: Vec<FlowRecord> = Vec::new();
    let mut sport_counter: u16 = 10_000;
    // Byte/flow-mass accumulators per (service, family): hours whose sampled
    // flow expectation is below one record carry their bytes forward instead
    // of dropping them (dropping would bias fractions against big-flow
    // services, which are disproportionately the IPv6-heavy streamers).
    let mut pending_bytes = vec![[0.0f64; 2]; services.len()];
    let mut pending_flows = vec![[0.0f64; 2]; services.len()];

    for day in 0..config.num_days {
        let weekday = day % 7;
        let absent = profile.absences.iter().any(|&(a, b)| day >= a && day <= b);

        // Per-day network health and per-day HE race results per service.
        let outage = rng.gen::<f64>() < profile.v6_outage_day_rate;
        let mut net = Network::dual_stack_ms(18 + rng.gen_range(0..20));
        if profile.v6_tunnel {
            net.set_family_default(
                Family::V6,
                PathProfile {
                    rtt: (60 + rng.gen_range(0..30)) * MILLIS,
                    loss: 0.002,
                    reachable: true,
                },
            );
        }
        if outage {
            net.set_family_default(Family::V6, PathProfile::unreachable());
        }
        // One Happy Eyeballs race per service per day decides whether IPv6
        // is usable towards that service today.
        let v6_usable: Vec<bool> = services
            .iter()
            .map(|s| {
                if s.v6.is_empty() {
                    return false;
                }
                let fqdn = Name::new(&format!("edge0.{}", s.service.domain));
                let race = he.connect(&net, &resolver, &mut rng, &fqdn, 0);
                race.winning_family() == Some(Family::V6)
            })
            .collect();

        // Per-day service mix jitter (lognormal), plus event days.
        let mut day_weights: Vec<f64> = base_weights
            .iter()
            .zip(services.iter())
            .map(|(w, s)| {
                let jitter = lognormal(&mut rng, 1.0, profile.day_mix_sigma);
                let absence_damp = if absent && s.service.kind.human_driven() {
                    0.03
                } else {
                    1.0
                };
                w * jitter * absence_damp
            })
            .collect();
        let mut day_gb = profile.daily_external_gb * lognormal(&mut rng, 1.0, 0.35);
        if absent {
            day_gb *= 0.25; // only background traffic remains
        }
        for ev in profile.events {
            if rng.gen::<f64>() < ev.probability {
                if let Some(idx) = services.iter().position(|s| s.service.key == ev.service) {
                    let extra_gb = ev.gb_mean * lognormal(&mut rng, 1.0, 0.4);
                    let wsum: f64 = day_weights.iter().sum();
                    // Make the event service dominate the (enlarged) day.
                    day_weights[idx] += wsum * (extra_gb / day_gb.max(0.01));
                    day_gb += extra_gb;
                }
            }
        }
        let weight_sum: f64 = day_weights.iter().sum();

        // Hourly synthesis.
        for hour in 0..24u32 {
            for (si, svc) in services.iter().enumerate() {
                let hour_w = if svc.service.kind.human_driven() {
                    human_hour_weight(hour, weekday)
                } else {
                    1.0
                };
                // Normalize the hour profile so a day's weights integrate
                // to ~1 across 24 hours (human weights sum to ~12.7).
                let hour_norm = if svc.service.kind.human_driven() {
                    12.7
                } else {
                    24.0
                };
                let svc_hour_bytes =
                    day_gb * 1e9 * (day_weights[si] / weight_sum) * (hour_w / hour_norm);
                let mean_flow = svc.service.kind.mean_flow_bytes();
                // Deterministic byte split: the IPv6 share of this hour's
                // bytes is fixed by the service's propensity, the residence
                // factor, today's Happy Eyeballs outcome and the dual-stack
                // device share — sampling only decides how many flow
                // *records* carry those bytes, so byte fractions stay tight
                // even at aggressive sampling scales.
                let p_v6 = if v6_usable[si] {
                    (svc.service.v6_share * residence_factor).min(0.98) * dual_share
                } else {
                    0.0
                };
                for (family_v6, bytes_real) in [
                    (true, svc_hour_bytes * p_v6),
                    (false, svc_hour_bytes * (1.0 - p_v6)),
                ] {
                    let fam = family_v6 as usize;
                    pending_bytes[si][fam] += bytes_real * config.scale;
                    pending_flows[si][fam] += (bytes_real / mean_flow) * config.scale;
                    let n_rec = poisson(&mut rng, pending_flows[si][fam]);
                    if n_rec == 0 {
                        continue;
                    }
                    let bytes_sampled = pending_bytes[si][fam];
                    pending_bytes[si][fam] = 0.0;
                    pending_flows[si][fam] = 0.0;
                    // Distribute the hour's sampled bytes over the records
                    // with lognormal weights (realistic sizes, exact total).
                    let weights: Vec<f64> =
                        (0..n_rec).map(|_| lognormal(&mut rng, 1.0, 0.9)).collect();
                    let wsum: f64 = weights.iter().sum();
                    for w in weights {
                        let bytes = ((bytes_sampled * w / wsum).max(200.0)) as u64;
                        let device = loop {
                            let d = &devices[rng.gen_range(0..devices.len())];
                            if !family_v6 || d.dual_stack {
                                break d;
                            }
                        };
                        let start =
                            day as u64 * DAY_US + hour as u64 * HOUR_US + rng.gen_range(0..HOUR_US);
                        let duration = match svc.service.kind {
                            ServiceKind::Streaming | ServiceKind::LiveVideo => {
                                rng.gen_range(600..3600) as u64 * 1_000_000
                            }
                            ServiceKind::VideoConf => rng.gen_range(900..5400) as u64 * 1_000_000,
                            ServiceKind::Download => rng.gen_range(60..900) as u64 * 1_000_000,
                            _ => rng.gen_range(1..120) as u64 * 1_000_000,
                        };
                        sport_counter = sport_counter.wrapping_add(1).max(1024);
                        let (src, dst) = if family_v6 {
                            let dst = svc.v6[rng.gen_range(0..svc.v6.len())];
                            (IpAddr::V6(device.v6), dst)
                        } else {
                            let dst = svc.v4[rng.gen_range(0..svc.v4.len())];
                            (IpAddr::V4(device.v4), dst)
                        };
                        let proto_udp = matches!(
                            svc.service.kind,
                            ServiceKind::VideoConf | ServiceKind::Gaming
                        ) || rng.gen::<f64>() < 0.05;
                        let key = if proto_udp {
                            FlowKey::udp(src, sport_counter, dst, 443)
                        } else {
                            FlowKey::tcp(src, sport_counter, dst, 443)
                        };
                        // Download-heavy: most bytes flow from the server.
                        router.inject(key, start, start + duration, bytes / 20, bytes);

                        // Happy Eyeballs residue: the losing IPv4 attempt
                        // shows up as a tiny flow.
                        if family_v6 && rng.gen::<f64>() < config.he_both_flow_rate {
                            let v4dst = svc.v4[rng.gen_range(0..svc.v4.len())];
                            let k = FlowKey::tcp(
                                IpAddr::V4(device.v4),
                                sport_counter.wrapping_add(7).max(1024),
                                v4dst,
                                443,
                            );
                            router.inject(k, start, start + 2_000_000, 300, 300);
                        }
                    }
                }
            }

            // ICMP probes: CPE keepalives and user pings — the monitor
            // tracks ICMP by type/code/id exactly like conntrack (§3.1).
            let n_icmp = poisson(&mut rng, 6.0 * config.scale.min(1.0) * 50.0);
            for _ in 0..n_icmp {
                let device = &devices[rng.gen_range(0..devices.len())];
                let svc = &services[rng.gen_range(0..services.len())];
                let use_v6 = device.dual_stack && !svc.v6.is_empty() && rng.gen::<f64>() < 0.5;
                let (src, dst) = if use_v6 {
                    (
                        IpAddr::V6(device.v6),
                        svc.v6[rng.gen_range(0..svc.v6.len())],
                    )
                } else {
                    (
                        IpAddr::V4(device.v4),
                        svc.v4[rng.gen_range(0..svc.v4.len())],
                    )
                };
                let key = FlowKey::icmp(
                    src,
                    dst,
                    flowmon::IcmpMeta {
                        icmp_type: 8,
                        icmp_code: 0,
                        icmp_id: rng.gen(),
                    },
                );
                let start = day as u64 * DAY_US + hour as u64 * HOUR_US + rng.gen_range(0..HOUR_US);
                router.inject(key, start, start + 1_000_000, 64 * 4, 64 * 4);
            }

            // Internal traffic: many tiny discovery flows plus occasional
            // bulk transfers between devices.
            let int_bytes_hour =
                profile.daily_external_gb * 1e9 * profile.internal_byte_fraction / 24.0;
            // Mean internal flow ≈ 11 kB: mostly tiny discovery chatter with
            // 2% bulk transfers around 300 kB.
            let n_int = poisson(&mut rng, int_bytes_hour / 11_000.0 * config.scale);
            for _ in 0..n_int {
                let a = &devices[rng.gen_range(0..devices.len())];
                let b = &devices[rng.gen_range(0..devices.len())];
                // Internal IPv6 runs over link-local/ULA addresses and works
                // even when a device's WAN IPv6 is broken — which is why the
                // paper finds internal and external fractions uncorrelated
                // (Residence C: 12% external vs 49% internal).
                let _ = (a.dual_stack, b.dual_stack);
                let use_v6 = rng.gen::<f64>() < profile.internal_v6_share;
                let bulk = rng.gen::<f64>() < 0.02;
                let bytes = if bulk {
                    lognormal(&mut rng, 300_000.0, 1.0) as u64
                } else {
                    rng.gen_range(120..2_500)
                };
                let start = day as u64 * DAY_US + hour as u64 * HOUR_US + rng.gen_range(0..HOUR_US);
                sport_counter = sport_counter.wrapping_add(1).max(1024);
                let (src, dst) = if use_v6 {
                    (IpAddr::V6(a.v6), IpAddr::V6(b.v6))
                } else {
                    (IpAddr::V4(a.v4), IpAddr::V4(b.v4))
                };
                let key = FlowKey::udp(src, sport_counter, dst, 5353);
                router.inject(key, start, start + 1_000_000, bytes, bytes / 4);
            }
        }
        flows.extend(router.drain());
    }

    ResidenceDataset {
        profile,
        flows,
        scale: config.scale,
        num_days: config.num_days,
    }
}

struct Device {
    v4: Ipv4Addr,
    v6: Ipv6Addr,
    dual_stack: bool,
}

fn lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (median.ln() + sigma * n).exp()
}

fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 50.0 {
        // Normal approximation for large means.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let n = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (mean + mean.sqrt() * n).round().max(0.0) as usize;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmon::Scope;
    use worldgen::WorldConfig;

    fn dataset() -> ResidenceDataset {
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        synthesize_residence(&world, profiles[0].clone(), &TrafficConfig::fast(), 0)
    }

    #[test]
    fn produces_flows_with_both_scopes_and_families() {
        let ds = dataset();
        assert!(ds.flows.len() > 1_000, "got {} flows", ds.flows.len());
        let ext = ds
            .flows
            .iter()
            .filter(|f| f.scope == Scope::External)
            .count();
        let int = ds
            .flows
            .iter()
            .filter(|f| f.scope == Scope::Internal)
            .count();
        assert!(ext > 0 && int > 0);
        let v6 = ds.flows.iter().filter(|f| f.family() == Family::V6).count();
        let v4 = ds.flows.iter().filter(|f| f.family() == Family::V4).count();
        assert!(v6 > 0 && v4 > 0);
    }

    #[test]
    fn external_v6_byte_fraction_near_target() {
        let ds = dataset();
        let (mut v6b, mut tot) = (0f64, 0f64);
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            let b = f.total_bytes() as f64;
            tot += b;
            if f.family() == Family::V6 {
                v6b += b;
            }
        }
        let frac = v6b / tot;
        let target = ds.profile.target_ext_v6_bytes;
        assert!(
            (frac - target).abs() < 0.15,
            "v6 byte fraction {frac:.3} vs target {target:.3}"
        );
    }

    #[test]
    fn diurnal_pattern_present() {
        // Needs a dense sample: at very sparse scales the byte-conserving
        // carryover smears hours (bytes from a quiet hour ride the next
        // emitted flow).
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let cfg = TrafficConfig {
            num_days: 14,
            scale: 1.0 / 100.0,
            ..TrafficConfig::fast()
        };
        let ds = synthesize_residence(&world, profiles[0].clone(), &cfg, 0);
        // External bytes by hour-of-day: evening must beat pre-dawn.
        let mut by_hour = [0u64; 24];
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            let hour = (f.start % DAY_US) / HOUR_US;
            by_hour[hour as usize] += f.total_bytes();
        }
        let night: u64 = (1..=5).map(|h| by_hour[h]).sum();
        let evening: u64 = (19..=23).map(|h| by_hour[h]).sum();
        assert!(
            evening > night * 5 / 2,
            "evening {evening} vs night {night}"
        );
    }

    #[test]
    fn absence_days_dip() {
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let cfg = TrafficConfig {
            num_days: 150,
            ..TrafficConfig::fast()
        };
        let ds = synthesize_residence(&world, profiles[0].clone(), &cfg, 0);
        let mut by_day = vec![0u64; 150];
        for f in ds.flows.iter().filter(|f| f.scope == Scope::External) {
            by_day[(f.start / DAY_US) as usize] += f.total_bytes();
        }
        let absent_avg: f64 = (135..=138).map(|d| by_day[d] as f64).sum::<f64>() / 4.0;
        let normal_avg: f64 = (100..130).map(|d| by_day[d] as f64).sum::<f64>() / 30.0;
        assert!(
            absent_avg < normal_avg * 0.6,
            "absence {absent_avg:.0} vs normal {normal_avg:.0}"
        );
    }

    #[test]
    fn he_residue_flows_exist() {
        let ds = dataset();
        // Tiny v4 TCP flows (~600 bytes total) are the HE losing attempts.
        let residue = ds
            .flows
            .iter()
            .filter(|f| {
                f.family() == Family::V4 && f.scope == Scope::External && f.total_bytes() == 600
            })
            .count();
        assert!(residue > 10, "expected HE residue flows, got {residue}");
    }

    #[test]
    fn deterministic() {
        let world = World::generate(&WorldConfig::small());
        let profiles = crate::profile::paper_residences();
        let a = synthesize_residence(&world, profiles[1].clone(), &TrafficConfig::fast(), 1);
        let b = synthesize_residence(&world, profiles[1].clone(), &TrafficConfig::fast(), 1);
        assert_eq!(a.flows.len(), b.flows.len());
        assert_eq!(a.flows.first(), b.flows.first());
        assert_eq!(a.flows.last(), b.flows.last());
    }

    #[test]
    fn synthesize_all_identical_at_any_thread_count() {
        let world = World::generate(&WorldConfig::small());
        let cfg = TrafficConfig {
            num_days: 20,
            ..TrafficConfig::fast()
        };
        let seq = synthesize_all(
            &world,
            &TrafficConfig {
                threads: 1,
                ..cfg.clone()
            },
        );
        let par = synthesize_all(
            &world,
            &TrafficConfig {
                threads: 4,
                ..cfg.clone()
            },
        );
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.profile.key, b.profile.key);
            assert_eq!(a.flows, b.flows, "residence {} differs", a.profile.key);
        }
    }
}
