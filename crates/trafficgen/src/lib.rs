//! # trafficgen — residential traffic synthesis
//!
//! The paper's client-side dataset (§3) is nine months of conntrack flow
//! logs from five Los Angeles residences. This crate synthesizes the
//! equivalent: per-residence, per-day, per-hour traffic over the
//! [`worldgen`] client-service catalog, shaped by
//!
//! * **human diurnal activity** — evening peaks, a weak weekly pattern, and
//!   absences (Residence A's spring break) during which only background
//!   (machine-generated, IPv4-heavier) traffic continues — the mechanism
//!   behind Fig 2's decomposition;
//! * **per-day service-mix jitter** — heavy-download and streaming days
//!   swing the daily IPv6 byte fraction exactly like Fig 1's long tails
//!   (Valve/Netflix days push IPv6 up; Twitch/Zoom days pull it down);
//! * **Happy Eyeballs** — a real RFC 8305 race per (day, service) decides
//!   whether IPv6 is usable that day, and winning-but-contested races leave
//!   losing-family SYN flows in the log, which is why flow fractions are
//!   noisier than byte fractions in the paper;
//! * **per-residence quirks** — Residence B reaches IPv6 through a tunnel,
//!   Residence C has devices with broken IPv6 (capping every service's
//!   fraction, §3.4), Residences D/E have partial visibility and rare
//!   massive IPv4 download days (the paper's E: 6.6% overall vs 45.9%
//!   daily-mean IPv6).
//!
//! Everything is recorded through the real [`flowmon`] router monitor, so
//! the analysis layer consumes exactly what the paper's pipeline consumed:
//! anonymizable flow records with byte counts and timestamps. Records are
//! *streamed* — synthesis pushes each completed flow into a caller-chosen
//! [`flowmon::FlowSink`] ([`synth::synthesize_profiles_with`]), so
//! paper-scale runs aggregate in place instead of materializing months of
//! records; [`provider`] layers the ISP-shared CGN gateway over the same
//! stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod longtail;
pub mod par;
pub mod profile;
pub mod provider;
pub mod subs;
pub mod synth;

pub use longtail::{synthesize_long_tail_into, LongTailTrafficConfig};
pub use par::fan_out;
pub use profile::{
    isp_cohort, paper_residences, transition_residences, EventDayProfile, ResidenceProfile,
};
pub use provider::{synthesize_isp, synthesize_isps, IspRun, IspSpec, SubscriberStats};
pub use subs::{
    num_shards, shard_day_records, subscriber_of_src, subscriber_src, synthesize_shard_day,
    synthesize_subscribers_into, SubscriberTrafficConfig,
};
pub use synth::{
    synthesize_all, synthesize_profiles, synthesize_profiles_with, synthesize_residence,
    synthesize_residence_into, ResidenceDataset, ResidenceSummary, SportAlloc, TrafficConfig,
};
