//! Streaming traffic synthesis over million-subscriber populations: the
//! producer behind the `repro million-subs` experiment.
//!
//! The population is the lazy [`worldgen::subs::Subscribers`] model —
//! profiles derive on demand from the subscriber index — and synthesis
//! walks it in **shards** (fixed-size index ranges). The canonical task
//! list is day-major: `(day 0, shard 0), (day 0, shard 1), …, (day 1,
//! shard 0), …`; each `(day, shard)` task is a pure function of
//! `(seed, day, shard)`, which is exactly the contract the work-stealing
//! [`crate::par::fan_out`] needs — completion order is irrelevant, the
//! emitted stream is byte-identical at any thread count.
//!
//! Each task's records are delivered as **one** `accept_batch` run. That
//! batch shape is what the spill path preserves: one sealed day-part per
//! `(day, shard)` task, replayed in canonical `(day, shard)` order, is
//! indistinguishable — batch boundaries included — from the in-memory
//! stream.

use crate::par::fan_out;
use flowmon::sink::FlowSink;
use flowmon::{FlowKey, FlowRecord, Scope};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use worldgen::World;

const HOUR_US: u64 = 3_600_000_000;
const DAY_US: u64 = 24 * HOUR_US;

/// Subscriber source address space:
/// v4 `10.0.0.0/8` (up to 16.7M subscribers), v6 `2a0c::/16` (subscriber
/// index in the low bits). Both are disjoint from every worldgen
/// destination range (clouds `24.0.0.0/6`/`2600::/13`, client services
/// `100.64.0.0/10`/`2a00::/16`, long tail `128.0.0.0/2`/`3000::/4`), so
/// replayed parts stay attributable.
const SRC4_BASE: u32 = 0x0a00_0000;
const SRC6_BASE: u128 = 0x2a0c << 112;

/// Configuration of a subscriber-population synthesis run.
#[derive(Debug, Clone)]
pub struct SubscriberTrafficConfig {
    /// Master seed (per-(day, shard) RNGs derive from it).
    pub seed: u64,
    /// Days to simulate. Peak memory is independent of this.
    pub num_days: u32,
    /// Subscribers per shard (one shard = one task = one day-part).
    pub shard_size: usize,
    /// Mean flows per subscriber-day (scaled by the subscriber's volume
    /// weight).
    pub flows_per_subscriber_day: f64,
    /// Worker threads over the task list (1 = sequential; output identical
    /// at any count).
    pub threads: usize,
}

impl Default for SubscriberTrafficConfig {
    fn default() -> Self {
        SubscriberTrafficConfig {
            seed: 0x5ab5_c21b_e12d,
            num_days: 2,
            shard_size: 4_096,
            flows_per_subscriber_day: 3.0,
            threads: 1,
        }
    }
}

/// Number of shards the population splits into.
pub fn num_shards(world: &World, config: &SubscriberTrafficConfig) -> usize {
    world.subscribers.count.div_ceil(config.shard_size.max(1))
}

/// The subscriber's source address for one flow family.
pub fn subscriber_src(i: usize, v6: bool) -> IpAddr {
    if v6 {
        IpAddr::V6(Ipv6Addr::from(SRC6_BASE | i as u128))
    } else {
        IpAddr::V4(Ipv4Addr::from(SRC4_BASE | (i as u32 & 0x00ff_ffff)))
    }
}

/// Recover the subscriber index from a source address written by
/// [`subscriber_src`]; `None` for foreign addresses.
pub fn subscriber_of_src(addr: IpAddr) -> Option<usize> {
    match addr {
        IpAddr::V4(a) => {
            let bits = u32::from(a);
            (bits & 0xff00_0000 == SRC4_BASE).then_some((bits & 0x00ff_ffff) as usize)
        }
        IpAddr::V6(a) => {
            let bits = u128::from(a);
            (bits >> 112 == 0x2a0c).then_some((bits & 0xffff_ffff_ffff) as usize)
        }
    }
}

/// Knuth's Poisson sampler, capped — per-subscriber flow counts are small.
fn poisson(rng: &mut SmallRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda.min(30.0)).exp();
    let mut n = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p < l || n >= 64 {
            return n;
        }
        n += 1;
    }
}

/// Synthesize one `(day, shard)` task into `sink` as a single
/// `accept_batch` run. Pure function of `(config.seed, day, shard)` plus
/// the world — the work-stealing contract.
pub fn synthesize_shard_day<S: FlowSink>(
    world: &World,
    config: &SubscriberTrafficConfig,
    day: u32,
    shard: usize,
    sink: &mut S,
) {
    sink.accept_batch(&shard_day_records(world, config, day, shard));
}

/// The records of one `(day, shard)` task, in emission order.
pub fn shard_day_records(
    world: &World,
    config: &SubscriberTrafficConfig,
    day: u32,
    shard: usize,
) -> Vec<FlowRecord> {
    let subs = &world.subscribers;
    let tail = &world.long_tail;
    assert!(
        !tail.is_empty(),
        "subscriber synthesis needs a tailed world (with_long_tail)"
    );
    let lo = shard * config.shard_size;
    let hi = (lo + config.shard_size).min(subs.count);
    let mut rng = SmallRng::seed_from_u64(
        config
            .seed
            .wrapping_add((u64::from(day) + 1).wrapping_mul(0xa076_1d64_78bd_642f))
            .wrapping_add((shard as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    );
    let day_base = u64::from(day) * DAY_US;
    let mut out = Vec::with_capacity(((hi - lo) as f64 * config.flows_per_subscriber_day) as usize);
    for i in lo..hi {
        let profile = subs.profile(i);
        let n = poisson(
            &mut rng,
            config.flows_per_subscriber_day * profile.volume_weight,
        );
        for _ in 0..n {
            let asx = &tail.ases[tail.sample_index(&mut rng)];
            let v6 =
                profile.dual_stack && !asx.v6.is_empty() && rng.gen::<f64>() < profile.v6_affinity;
            // Tail v6 prefixes dwarf the draw range and the v4 index folds
            // into the prefix size, so both lookups are total and the
            // fallbacks unreachable.
            let dst = if v6 {
                let p = &asx.v6[rng.gen_range(0..asx.v6.len())];
                let h = 1 + rng.gen_range(0..1_000) as u128;
                IpAddr::V6(p.host(h).unwrap_or(Ipv6Addr::LOCALHOST))
            } else {
                let p = &asx.v4[rng.gen_range(0..asx.v4.len())];
                let h = (1 + rng.gen_range(0..250)) % p.size();
                IpAddr::V4(p.host(h).unwrap_or(Ipv4Addr::LOCALHOST))
            };
            let start = day_base + rng.gen_range(0..DAY_US);
            let duration = u64::from(rng.gen_range(1..600u32)) * 1_000_000;
            let sport = rng.gen_range(10_000..60_000u16);
            // Lognormal-ish size, scaled by the subscriber's volume weight.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let bytes =
                (40_000.0 * profile.volume_weight * (1.2 * z).exp2()).clamp(200.0, 4e8) as u64;
            let src = subscriber_src(i, v6);
            let key = if rng.gen::<f64>() < 0.1 {
                FlowKey::udp(src, sport, dst, 443)
            } else {
                FlowKey::tcp(src, sport, dst, 443)
            };
            out.push(FlowRecord {
                key,
                start,
                end: start + duration,
                bytes_orig: bytes / 20,
                bytes_reply: bytes,
                packets_orig: 1 + bytes / 30_000,
                packets_reply: 1 + bytes / 1_400,
                scope: Scope::External,
            });
        }
    }
    out
}

/// Synthesize the whole run into `sink` in canonical order: days
/// ascending, shards ascending within a day, one `accept_batch` run per
/// `(day, shard)` task. Byte-identical at any `config.threads` — tasks go
/// through the work-stealing fan-out and are flushed in task order, so
/// peak memory is O(in-flight chunk), not O(run).
pub fn synthesize_subscribers_into<S: FlowSink>(
    world: &World,
    config: &SubscriberTrafficConfig,
    sink: &mut S,
) {
    let shards = num_shards(world, config);
    if config.threads.max(1) == 1 {
        for day in 0..config.num_days {
            for shard in 0..shards {
                synthesize_shard_day(world, config, day, shard, sink);
            }
        }
        return;
    }
    // Flat day-major task list, fanned out in chunks: one chunk of tasks is
    // in flight at a time and flushed in canonical order.
    let tasks: Vec<(u32, usize)> = (0..config.num_days)
        .flat_map(|day| (0..shards).map(move |shard| (day, shard)))
        .collect();
    let chunk = (config.threads * 2).max(1);
    for window in tasks.chunks(chunk) {
        let buffers = fan_out(window.to_vec(), config.threads, |_, (day, shard)| {
            shard_day_records(world, config, day, shard)
        });
        for records in buffers {
            sink.accept_batch(&records);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmon::sink::CollectSink;
    use worldgen::WorldConfig;

    fn subscriber_world(subs: usize) -> World {
        World::generate(
            &WorldConfig {
                num_sites: 200,
                ..WorldConfig::small()
            }
            .with_long_tail(1_000)
            .with_subscribers(subs),
        )
    }

    #[test]
    fn shard_day_is_pure() {
        let world = subscriber_world(10_000);
        let cfg = SubscriberTrafficConfig::default();
        assert_eq!(
            shard_day_records(&world, &cfg, 1, 2),
            shard_day_records(&world, &cfg, 1, 2)
        );
        assert_ne!(
            shard_day_records(&world, &cfg, 0, 0),
            shard_day_records(&world, &cfg, 1, 0)
        );
    }

    #[test]
    fn thread_invariant_and_canonically_ordered() {
        let world = subscriber_world(10_000);
        let cfg = SubscriberTrafficConfig {
            num_days: 3,
            threads: 1,
            ..SubscriberTrafficConfig::default()
        };
        let mut seq = CollectSink::new();
        synthesize_subscribers_into(&world, &cfg, &mut seq);
        assert!(!seq.records.is_empty());
        for threads in [3, 8] {
            let mut par = CollectSink::new();
            synthesize_subscribers_into(
                &world,
                &SubscriberTrafficConfig {
                    threads,
                    ..cfg.clone()
                },
                &mut par,
            );
            assert_eq!(seq.records, par.records, "fan-out changed the stream");
        }
        // Days ascend — the FlowSink producer contract.
        let mut last_day = 0;
        for r in &seq.records {
            let day = r.start / DAY_US;
            assert!(day >= last_day);
            last_day = day;
        }
    }

    #[test]
    fn src_addresses_round_trip_subscriber_indices() {
        for i in [0usize, 1, 4_095, 999_999] {
            assert_eq!(subscriber_of_src(subscriber_src(i, false)), Some(i));
            assert_eq!(subscriber_of_src(subscriber_src(i, true)), Some(i));
        }
        assert_eq!(subscriber_of_src("24.0.0.1".parse().unwrap()), None);
        assert_eq!(subscriber_of_src("3000::1".parse().unwrap()), None);
    }

    #[test]
    fn population_is_covered_with_mixed_adoption() {
        let world = subscriber_world(8_192);
        let cfg = SubscriberTrafficConfig {
            num_days: 2,
            ..SubscriberTrafficConfig::default()
        };
        let mut sink = CollectSink::new();
        synthesize_subscribers_into(&world, &cfg, &mut sink);
        let mut seen = std::collections::BTreeSet::new();
        let mut v6 = 0usize;
        for r in &sink.records {
            seen.insert(subscriber_of_src(r.key.src).expect("subscriber src"));
            if matches!(r.key.src, IpAddr::V6(_)) {
                v6 += 1;
            }
        }
        assert!(seen.len() > 7_000, "subscribers seen {}", seen.len());
        assert!(v6 > 1_000, "v6 flows {v6}");
        assert!(sink.records.len() - v6 > 1_000);
    }
}
