//! Residence profiles calibrated against Table 1, plus the synthetic
//! transition-technology cohort.

use serde::Serialize;
use transition::AccessTech;

/// Rare "event day" behaviour: a huge download/streaming day dominated by a
/// single service (the paper's heavy-hitter days above the 90th / below the
/// 10th percentile, and Residence E's 6.6%-overall-vs-45.9%-daily anomaly).
#[derive(Debug, Clone, Serialize)]
pub struct EventDayProfile {
    /// Probability that any given day is an event day.
    pub probability: f64,
    /// Service that dominates the event day (catalog key).
    pub service: &'static str,
    /// Mean gigabytes added on an event day.
    pub gb_mean: f64,
}

/// A residence's generation parameters plus the paper's measured values
/// (used only for comparison output, never during generation).
#[derive(Debug, Clone, Serialize)]
pub struct ResidenceProfile {
    /// Residence letter (A–E for the paper's cohort).
    pub key: char,
    /// How the access network provides IPv4/IPv6 (the paper's residences
    /// are all native dual-stack; the transition cohort varies this).
    pub access_tech: AccessTech,
    /// Number of residents (drives diurnal amplitude).
    pub residents: usize,
    /// Mean external gigabytes per day.
    pub daily_external_gb: f64,
    /// Internal traffic as a fraction of external bytes.
    pub internal_byte_fraction: f64,
    /// Target IPv6 byte share of external traffic (drives the residence
    /// factor that scales every service's IPv6 propensity — the same
    /// mechanism that caps every AS at Residence C).
    pub target_ext_v6_bytes: f64,
    /// Target IPv6 share of internal bytes/flows.
    pub internal_v6_share: f64,
    /// Log-space sigma of the per-day, per-service mix jitter.
    pub day_mix_sigma: f64,
    /// Service-mix boosts: (catalog key, multiplier on the global weight).
    pub mix_boosts: &'static [(&'static str, f64)],
    /// Share of traffic from devices with broken/disabled IPv6 (Residence C).
    pub broken_v6_share: f64,
    /// IPv6 reached through a tunnel (adds RTT; Residence B).
    pub v6_tunnel: bool,
    /// Probability that the residence's IPv6 path is down for a whole day
    /// (CPE weirdness — adds day-level variance).
    pub v6_outage_day_rate: f64,
    /// Inclusive day ranges when the residence is empty (spring break).
    pub absences: &'static [(u32, u32)],
    /// Event-day profiles.
    pub events: &'static [EventDayProfile],
    // --- Paper's measured values (Table 1), for report comparison only. ---
    /// Paper: external traffic volume in GB.
    pub paper_ext_gb: f64,
    /// Paper: external IPv6 byte fraction (overall).
    pub paper_ext_v6_bytes: f64,
    /// Paper: external flow count in millions.
    pub paper_ext_flows_m: f64,
    /// Paper: external IPv6 flow fraction (overall).
    pub paper_ext_v6_flows: f64,
    /// Paper: internal volume in GB.
    pub paper_int_gb: f64,
    /// Paper: internal IPv6 byte fraction.
    pub paper_int_v6_bytes: f64,
    /// Paper: daily-mean external IPv6 byte fraction and its s.d.
    pub paper_daily_mean_sd: (f64, f64),
}

/// The five residences, calibrated to Table 1.
pub fn paper_residences() -> Vec<ResidenceProfile> {
    vec![
        // Residence A: largest household, verified dual-stack devices,
        // streaming-heavy, IPv6-dominant; spring break Mar 16–19 2025
        // (days 135–138 from the Nov 1 2024 epoch).
        ResidenceProfile {
            key: 'A',
            access_tech: AccessTech::NativeDualStack,
            residents: 7,
            daily_external_gb: 25.6,
            internal_byte_fraction: 0.00127,
            target_ext_v6_bytes: 0.679,
            internal_v6_share: 0.26,
            day_mix_sigma: 0.85,
            mix_boosts: &[
                ("netflix-ssi", 1.7),
                ("google-1e100", 1.4),
                ("valve", 1.5),
                ("apple-austin", 1.3),
                ("facebook", 1.2),
            ],
            broken_v6_share: 0.0,
            v6_tunnel: false,
            v6_outage_day_rate: 0.01,
            absences: &[(135, 138)],
            events: &[EventDayProfile {
                probability: 0.03,
                service: "valve",
                gb_mean: 45.0,
            }],
            paper_ext_gb: 6976.68,
            paper_ext_v6_bytes: 0.679,
            paper_ext_flows_m: 110.61,
            paper_ext_v6_flows: 0.503,
            paper_int_gb: 8.87,
            paper_int_v6_bytes: 0.216,
            paper_daily_mean_sd: (0.686, 0.173),
        },
        // Residence B: Frontier (IPv4-only ISP) with a university tunnel for
        // IPv6; still IPv6-majority.
        ResidenceProfile {
            key: 'B',
            access_tech: AccessTech::NativeDualStack,
            residents: 4,
            daily_external_gb: 22.2,
            internal_byte_fraction: 0.00087,
            target_ext_v6_bytes: 0.638,
            internal_v6_share: 0.56,
            day_mix_sigma: 1.0,
            mix_boosts: &[
                ("netflix-ssi", 1.4),
                ("google-1e100", 1.5),
                ("facebook", 1.3),
                ("zoom", 1.3),
            ],
            broken_v6_share: 0.0,
            v6_tunnel: true,
            v6_outage_day_rate: 0.03,
            absences: &[],
            events: &[EventDayProfile {
                probability: 0.025,
                service: "apple-austin",
                gb_mean: 35.0,
            }],
            paper_ext_gb: 6066.87,
            paper_ext_v6_bytes: 0.638,
            paper_ext_flows_m: 100.65,
            paper_ext_v6_flows: 0.633,
            paper_int_gb: 5.28,
            paper_int_v6_bytes: 0.583,
            paper_daily_mean_sd: (0.549, 0.202),
        },
        // Residence C: highest volume but most devices have broken or
        // disabled IPv6 — every AS's fraction is capped (§3.4's "highest
        // IPv6 bytes fraction seen among ASes at Residence C is 40%").
        ResidenceProfile {
            key: 'C',
            access_tech: AccessTech::NativeDualStack,
            residents: 3,
            daily_external_gb: 28.6,
            internal_byte_fraction: 0.00054,
            target_ext_v6_bytes: 0.122,
            internal_v6_share: 0.43,
            day_mix_sigma: 1.1,
            mix_boosts: &[
                ("twitch", 3.0),
                ("zoom", 2.0),
                ("bytedance", 2.0),
                ("netflix-ssi", 1.2),
            ],
            broken_v6_share: 0.62,
            v6_tunnel: false,
            v6_outage_day_rate: 0.05,
            absences: &[],
            events: &[EventDayProfile {
                probability: 0.04,
                service: "twitch",
                gb_mean: 50.0,
            }],
            paper_ext_gb: 7816.41,
            paper_ext_v6_bytes: 0.122,
            paper_ext_flows_m: 31.71,
            paper_ext_v6_flows: 0.089,
            paper_int_gb: 4.22,
            paper_int_v6_bytes: 0.493,
            paper_daily_mean_sd: (0.089, 0.188),
        },
        // Residence D: partial visibility (most devices stayed on the ISP
        // router); tiny external volume, web-heavy and IPv6-leaning flows,
        // plus internal gaming traffic that is almost entirely IPv6.
        ResidenceProfile {
            key: 'D',
            access_tech: AccessTech::NativeDualStack,
            residents: 2,
            daily_external_gb: 0.30,
            internal_byte_fraction: 0.088,
            target_ext_v6_bytes: 0.74,
            internal_v6_share: 0.98,
            day_mix_sigma: 1.5,
            mix_boosts: &[
                ("google", 2.0),
                ("facebook", 1.8),
                ("fbcdn", 1.8),
                ("wikimedia", 1.5),
            ],
            broken_v6_share: 0.0,
            v6_tunnel: false,
            v6_outage_day_rate: 0.02,
            absences: &[],
            events: &[EventDayProfile {
                probability: 0.02,
                service: "leaseweb",
                gb_mean: 6.0,
            }],
            paper_ext_gb: 81.47,
            paper_ext_v6_bytes: 0.495,
            paper_ext_flows_m: 1.67,
            paper_ext_v6_flows: 0.824,
            paper_int_gb: 7.18,
            paper_int_v6_bytes: 0.986,
            paper_daily_mean_sd: (0.694, 0.321),
        },
        // Residence E: modest daily traffic with a roughly even IPv6 split,
        // but a handful of colossal IPv4-only download days dominate the
        // total — overall 6.6% IPv6 despite a 45.9% daily mean.
        ResidenceProfile {
            key: 'E',
            access_tech: AccessTech::NativeDualStack,
            residents: 1,
            daily_external_gb: 0.24,
            internal_byte_fraction: 0.0005,
            target_ext_v6_bytes: 0.50,
            internal_v6_share: 0.18,
            day_mix_sigma: 1.6,
            mix_boosts: &[("google", 1.5), ("facebook", 1.3)],
            broken_v6_share: 0.0,
            v6_tunnel: false,
            v6_outage_day_rate: 0.04,
            absences: &[],
            events: &[EventDayProfile {
                probability: 0.045,
                service: "leaseweb",
                gb_mean: 40.0,
            }],
            paper_ext_gb: 545.68,
            paper_ext_v6_bytes: 0.066,
            paper_ext_flows_m: 2.36,
            paper_ext_v6_flows: 0.110,
            paper_int_gb: 0.26,
            paper_int_v6_bytes: 0.173,
            paper_daily_mean_sd: (0.459, 0.423),
        },
    ]
}

/// The synthetic transition-technology cohort: five residences identical in
/// every behavioural parameter, differing *only* in [`AccessTech`]. Holding
/// demand constant isolates what each provisioning does to the traffic —
/// translated vs native shares become directly comparable across lines.
///
/// Keys: `N` native dual-stack, `4` IPv4-only, `6` IPv6-only + NAT64/DNS64,
/// `X` 464XLAT, `L` DS-Lite.
pub fn transition_residences() -> Vec<ResidenceProfile> {
    let base = |key: char, access_tech: AccessTech| ResidenceProfile {
        key,
        access_tech,
        residents: 3,
        daily_external_gb: 8.0,
        internal_byte_fraction: 0.002,
        target_ext_v6_bytes: 0.65,
        internal_v6_share: 0.40,
        day_mix_sigma: 0.9,
        mix_boosts: &[],
        broken_v6_share: 0.0,
        v6_tunnel: false,
        v6_outage_day_rate: 0.01,
        absences: &[],
        events: &[],
        // No Table 1 analogue: the cohort is a new scenario, not a
        // reproduction target.
        paper_ext_gb: 0.0,
        paper_ext_v6_bytes: 0.0,
        paper_ext_flows_m: 0.0,
        paper_ext_v6_flows: 0.0,
        paper_int_gb: 0.0,
        paper_int_v6_bytes: 0.0,
        paper_daily_mean_sd: (0.0, 0.0),
    };
    vec![
        base('N', AccessTech::NativeDualStack),
        base('4', AccessTech::V4Only),
        base('6', AccessTech::Ipv6OnlyNat64),
        base('X', AccessTech::Xlat464),
        base('L', AccessTech::DsLite),
    ]
}

/// A deterministic ISP subscriber cohort for provider-shared CGN studies:
/// every line uses a technology that consumes shared-gateway bindings
/// (half IPv6-only NAT64, a quarter 464XLAT, a quarter DS-Lite, by index
/// pattern), with mildly varied household size and demand so the pool sees
/// realistic heterogeneous load. Keys cycle `a..=z`; behaviour depends only
/// on the subscriber index, so cohorts of any size (up to the
/// synthesizer's 65k-residence LAN addressing plan) are reproducible.
pub fn isp_cohort(subscribers: usize) -> Vec<ResidenceProfile> {
    (0..subscribers)
        .map(|i| {
            let access_tech = match i % 4 {
                0 | 2 => AccessTech::Ipv6OnlyNat64,
                1 => AccessTech::Xlat464,
                _ => AccessTech::DsLite,
            };
            ResidenceProfile {
                key: (b'a' + (i % 26) as u8) as char,
                access_tech,
                residents: 1 + i % 4,
                daily_external_gb: 3.0 + (i % 7) as f64 * 1.5,
                internal_byte_fraction: 0.002,
                target_ext_v6_bytes: 0.65,
                internal_v6_share: 0.40,
                day_mix_sigma: 0.9,
                mix_boosts: &[],
                broken_v6_share: 0.0,
                v6_tunnel: false,
                v6_outage_day_rate: 0.01,
                absences: &[],
                events: &[],
                // Not a reproduction target: no Table 1 analogue.
                paper_ext_gb: 0.0,
                paper_ext_v6_bytes: 0.0,
                paper_ext_flows_m: 0.0,
                paper_ext_v6_flows: 0.0,
                paper_int_gb: 0.0,
                paper_int_v6_bytes: 0.0,
                paper_daily_mean_sd: (0.0, 0.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isp_cohort_is_gateway_bound_and_deterministic() {
        let cohort = isp_cohort(10);
        assert_eq!(cohort.len(), 10);
        for p in &cohort {
            assert!(
                p.access_tech.uses_gateway(),
                "every ISP-cohort line contends for the shared plant"
            );
        }
        let nat64 = cohort
            .iter()
            .filter(|p| p.access_tech == AccessTech::Ipv6OnlyNat64)
            .count();
        let dslite = cohort
            .iter()
            .filter(|p| p.access_tech == AccessTech::DsLite)
            .count();
        assert_eq!(nat64, 5);
        assert_eq!(dslite, 2);
        // Deterministic: same inputs, same cohort.
        let again = isp_cohort(10);
        for (a, b) in cohort.iter().zip(&again) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.access_tech, b.access_tech);
            assert_eq!(a.daily_external_gb, b.daily_external_gb);
        }
    }

    #[test]
    fn transition_cohort_differs_only_in_tech() {
        let cohort = transition_residences();
        let techs: Vec<AccessTech> = cohort.iter().map(|r| r.access_tech).collect();
        assert_eq!(techs, AccessTech::all().to_vec());
        for r in &cohort {
            assert_eq!(r.daily_external_gb, cohort[0].daily_external_gb);
            assert_eq!(r.residents, cohort[0].residents);
        }
        // The paper's residences are all native dual-stack.
        for r in paper_residences() {
            assert_eq!(r.access_tech, AccessTech::NativeDualStack);
        }
    }

    #[test]
    fn five_residences_a_through_e() {
        let rs = paper_residences();
        let keys: Vec<char> = rs.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec!['A', 'B', 'C', 'D', 'E']);
        let total: usize = rs.iter().map(|r| r.residents).sum();
        assert_eq!(total, 17, "the paper's 17 individuals");
    }

    #[test]
    fn calibration_totals_match_paper_magnitudes() {
        for r in paper_residences() {
            let total = r.daily_external_gb * 273.0;
            let event_extra: f64 = r
                .events
                .iter()
                .map(|e| e.probability * 273.0 * e.gb_mean)
                .sum();
            let ratio = (total + event_extra) / r.paper_ext_gb;
            assert!(
                (0.5..2.0).contains(&ratio),
                "residence {}: generated {total:.0}+{event_extra:.0} GB vs paper {} GB",
                r.key,
                r.paper_ext_gb
            );
        }
    }

    #[test]
    fn c_is_the_broken_v6_residence() {
        let rs = paper_residences();
        let c = rs.iter().find(|r| r.key == 'C').unwrap();
        assert!(c.broken_v6_share > 0.5);
        let b = rs.iter().find(|r| r.key == 'B').unwrap();
        assert!(b.v6_tunnel, "B's IPv6 comes through a tunnel");
    }

    #[test]
    fn a_has_spring_break() {
        let rs = paper_residences();
        let a = rs.iter().find(|r| r.key == 'A').unwrap();
        assert_eq!(a.absences, &[(135, 138)]);
    }
}
