//! Property tests of the streaming flow pipeline: the [`CollectSink`] path
//! must reproduce the materialized dataset byte-for-byte, and streamed
//! aggregates must equal aggregates recomputed from the collected records,
//! at every `(threads, day_threads)` combination — the refactor's two
//! load-bearing guarantees.

use flowmon::sink::{drain_into, CollectSink, FlowStatsAgg, TranslationAgg};
use flowmon::{Direction, FlowTable, ScopeFamilyAgg, TranslationMap};
use ipv6view_core::client::AsAgg;
use proptest::prelude::*;
use std::sync::OnceLock;
use trafficgen::{
    paper_residences, synthesize_long_tail_into, synthesize_profiles, synthesize_profiles_with,
    synthesize_residence, synthesize_residence_into, transition_residences, LongTailTrafficConfig,
    TrafficConfig,
};
use worldgen::{World, WorldConfig};

/// One shared world: generation is the expensive part and the properties
/// vary seeds/threads, not the world.
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(&WorldConfig::small()))
}

/// A shared long-tail world for the routing-table-scale properties
/// (shrunk from the experiment's ~100k ASes to keep proptest cases fast —
/// the mechanism under test, the `long_tail_ases` knob + dense AS
/// symbols, is identical at every size).
fn tailed_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::generate(
            &WorldConfig {
                num_sites: 200,
                ..WorldConfig::small()
            }
            .with_long_tail(3_000),
        )
    })
}

fn cfg(seed: u64, threads: usize, day_threads: usize) -> TrafficConfig {
    TrafficConfig {
        seed,
        num_days: 10,
        threads,
        day_threads,
        ..TrafficConfig::fast()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Streaming into a `CollectSink` is byte-identical to the
    /// materializing API, whatever the worker layout, for both an
    /// untranslated and a gateway-using residence.
    #[test]
    fn collect_sink_is_byte_identical(
        seed in 0u64..1_000_000,
        threads in 1usize..5,
        day_threads in 1usize..4,
    ) {
        let world = world();
        let baseline_cfg = cfg(seed, 1, 1);
        let par_cfg = cfg(seed, threads, day_threads);
        // Residence A (dual-stack) and the cohort's NAT64 line.
        for (profile, idx) in [
            (paper_residences()[0].clone(), 0u64),
            (transition_residences()[2].clone(), 2u64),
        ] {
            let ds = synthesize_residence(world, profile.clone(), &baseline_cfg, idx);
            let mut sink = CollectSink::new();
            let summary =
                synthesize_residence_into(world, profile, &par_cfg, idx, &mut sink);
            prop_assert_eq!(&sink.records, &ds.flows);
            prop_assert_eq!(summary.num_days, ds.num_days);
            match (summary.gateway, ds.gateway) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.granted, b.granted);
                    prop_assert_eq!(a.rejected, b.rejected);
                    prop_assert_eq!(a.peak_active, b.peak_active);
                }
                other => prop_assert!(false, "gateway mismatch: {:?}", other),
            }
        }
    }

    /// At long-tail scale: the per-AS aggregates streamed through a dense
    /// [`AsAgg`] are identical at every day-thread count, and identical to
    /// aggregates recomputed from the collected record stream — the
    /// `as-fractions` experiment's byte-identical-JSON guarantee.
    #[test]
    fn longtail_per_as_aggregates_identical_across_threads(
        seed in 0u64..1_000_000,
        threads in 2usize..5,
    ) {
        let world = tailed_world();
        let cfg = |threads| LongTailTrafficConfig {
            seed,
            num_days: 4,
            flows_per_day: 2_500,
            threads,
        };
        let mut seq = (CollectSink::new(), AsAgg::new(&world.rib, &world.registry));
        synthesize_long_tail_into(world, &cfg(1), &mut seq);
        let mut par = AsAgg::new(&world.rib, &world.registry);
        synthesize_long_tail_into(world, &cfg(threads), &mut par);
        let (records, seq_agg) = (seq.0.records, seq.1);
        // Thread-invariant...
        prop_assert_eq!(seq_agg.total_bytes(), par.total_bytes());
        let (a, b) = (seq_agg.fractions('T', 0.0001), par.fractions('T', 0.0001));
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.asn, y.asn);
            prop_assert_eq!(x.bytes, y.bytes);
            prop_assert_eq!(x.flows, y.flows);
            prop_assert_eq!(x.fraction, y.fraction);
        }
        // ...and equal to a recomputation from the materialized stream.
        let mut recomputed = AsAgg::new(&world.rib, &world.registry);
        drain_into(&records, &mut recomputed);
        prop_assert_eq!(recomputed.total_bytes(), seq_agg.total_bytes());
        prop_assert_eq!(
            recomputed.fractions('T', 0.0).len(),
            seq_agg.fractions('T', 0.0).len()
        );
    }

    /// At long-tail scale: two identically-fed conntrack tables evict in
    /// the same deterministic order, and the per-AS aggregates built from
    /// the evicted records equal the aggregates over the original stream —
    /// eviction must never lose or reorder per-AS mass, whatever worker
    /// layout produced the stream.
    #[test]
    fn longtail_eviction_order_and_per_as_aggregates_deterministic(
        seed in 0u64..1_000_000,
        threads in 1usize..5,
    ) {
        let world = tailed_world();
        let cfg = LongTailTrafficConfig {
            seed,
            num_days: 2,
            flows_per_day: 2_000,
            threads,
        };
        let mut sink = CollectSink::new();
        synthesize_long_tail_into(world, &cfg, &mut sink);
        let records = sink.records;
        // Feed each record's lifecycle into a conntrack table; never
        // destroy, so every record leaves via idle eviction.
        let feed = |table: &mut FlowTable| {
            for r in &records {
                table.on_new(r.key, r.start, r.scope);
                table.on_packet(&r.key, r.end, Direction::Original, r.bytes_orig);
                table.on_packet(&r.key, r.end, Direction::Reply, r.bytes_reply);
            }
            table.evict_idle(u64::MAX)
        };
        let mut t1 = FlowTable::new();
        let mut t2 = FlowTable::new();
        let e1 = feed(&mut t1);
        let e2 = feed(&mut t2);
        prop_assert_eq!(e1, t1.completed_count());
        prop_assert_eq!(e1, e2);
        let (d1, d2) = (t1.drain(), t2.drain());
        prop_assert_eq!(&d1, &d2, "eviction order must be deterministic");
        // Within one day the port allocator never reissues a live port, so
        // the only possible key collisions are cross-day (the cycle
        // restarts at midnight); a collision merges two records in the
        // table but conserves their bytes, so the per-AS *byte* mass over
        // the evicted stream must always equal the original stream's.
        prop_assert!(d1.len() <= records.len());
        let mut from_evicted = AsAgg::new(&world.rib, &world.registry);
        drain_into(&d1, &mut from_evicted);
        let mut from_stream = AsAgg::new(&world.rib, &world.registry);
        drain_into(&records, &mut from_stream);
        prop_assert_eq!(from_evicted.total_bytes(), from_stream.total_bytes());
        let (a, b) = (from_evicted.fractions('T', 0.0), from_stream.fractions('T', 0.0));
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.asn, y.asn);
            prop_assert_eq!(x.bytes, y.bytes);
        }
    }

    /// Streamed aggregates equal aggregates recomputed from the collected
    /// records — counters, distribution sketches and translation tallies
    /// alike — at any worker layout.
    #[test]
    fn streamed_aggregates_equal_recomputed(
        seed in 0u64..1_000_000,
        threads in 1usize..5,
        day_threads in 1usize..4,
    ) {
        let world = world();
        let par_cfg = cfg(seed, threads, day_threads);
        let nat64 = world.transition.nat64_prefix.prefix();
        let make_map = || {
            let mut map = TranslationMap::new();
            map.add_nat64_prefix(nat64);
            map
        };
        // Stream the transition cohort through composite aggregators...
        let streamed = synthesize_profiles_with(
            world,
            transition_residences(),
            &par_cfg,
            |_, _| (
                ScopeFamilyAgg::new(par_cfg.num_days),
                (FlowStatsAgg::new(), TranslationAgg::new(make_map())),
            ),
        );
        // ...and recompute the same aggregates from materialized records.
        let datasets = synthesize_profiles(world, transition_residences(), &cfg(seed, 1, 1));
        prop_assert_eq!(streamed.len(), datasets.len());
        for ((summary, (scope, (stats, xlat))), ds) in streamed.iter().zip(&datasets) {
            prop_assert_eq!(summary.profile.key, ds.profile.key);
            let mut scope2 = ScopeFamilyAgg::new(par_cfg.num_days);
            let mut stats2 = FlowStatsAgg::new();
            let mut xlat2 = TranslationAgg::new(make_map());
            drain_into(&ds.flows, &mut scope2);
            drain_into(&ds.flows, &mut stats2);
            drain_into(&ds.flows, &mut xlat2);
            prop_assert_eq!(scope, &scope2);
            prop_assert_eq!(stats, &stats2);
            prop_assert_eq!(&xlat.bytes, &xlat2.bytes);
            prop_assert_eq!(&xlat.flows, &xlat2.flows);
        }
    }
}
