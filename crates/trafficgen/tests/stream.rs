//! Property tests of the streaming flow pipeline: the [`CollectSink`] path
//! must reproduce the materialized dataset byte-for-byte, and streamed
//! aggregates must equal aggregates recomputed from the collected records,
//! at every `(threads, day_threads)` combination — the refactor's two
//! load-bearing guarantees.

use flowmon::sink::{drain_into, CollectSink, FlowStatsAgg, TranslationAgg};
use flowmon::{ScopeFamilyAgg, TranslationMap};
use proptest::prelude::*;
use std::sync::OnceLock;
use trafficgen::{
    paper_residences, synthesize_profiles, synthesize_profiles_with, synthesize_residence,
    synthesize_residence_into, transition_residences, TrafficConfig,
};
use worldgen::{World, WorldConfig};

/// One shared world: generation is the expensive part and the properties
/// vary seeds/threads, not the world.
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(&WorldConfig::small()))
}

fn cfg(seed: u64, threads: usize, day_threads: usize) -> TrafficConfig {
    TrafficConfig {
        seed,
        num_days: 10,
        threads,
        day_threads,
        ..TrafficConfig::fast()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Streaming into a `CollectSink` is byte-identical to the
    /// materializing API, whatever the worker layout, for both an
    /// untranslated and a gateway-using residence.
    #[test]
    fn collect_sink_is_byte_identical(
        seed in 0u64..1_000_000,
        threads in 1usize..5,
        day_threads in 1usize..4,
    ) {
        let world = world();
        let baseline_cfg = cfg(seed, 1, 1);
        let par_cfg = cfg(seed, threads, day_threads);
        // Residence A (dual-stack) and the cohort's NAT64 line.
        for (profile, idx) in [
            (paper_residences()[0].clone(), 0u64),
            (transition_residences()[2].clone(), 2u64),
        ] {
            let ds = synthesize_residence(world, profile.clone(), &baseline_cfg, idx);
            let mut sink = CollectSink::new();
            let summary =
                synthesize_residence_into(world, profile, &par_cfg, idx, &mut sink);
            prop_assert_eq!(&sink.records, &ds.flows);
            prop_assert_eq!(summary.num_days, ds.num_days);
            match (summary.gateway, ds.gateway) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.granted, b.granted);
                    prop_assert_eq!(a.rejected, b.rejected);
                    prop_assert_eq!(a.peak_active, b.peak_active);
                }
                other => prop_assert!(false, "gateway mismatch: {:?}", other),
            }
        }
    }

    /// Streamed aggregates equal aggregates recomputed from the collected
    /// records — counters, distribution sketches and translation tallies
    /// alike — at any worker layout.
    #[test]
    fn streamed_aggregates_equal_recomputed(
        seed in 0u64..1_000_000,
        threads in 1usize..5,
        day_threads in 1usize..4,
    ) {
        let world = world();
        let par_cfg = cfg(seed, threads, day_threads);
        let nat64 = world.transition.nat64_prefix.prefix();
        let make_map = || {
            let mut map = TranslationMap::new();
            map.add_nat64_prefix(nat64);
            map
        };
        // Stream the transition cohort through composite aggregators...
        let streamed = synthesize_profiles_with(
            world,
            transition_residences(),
            &par_cfg,
            |_, _| (
                ScopeFamilyAgg::new(par_cfg.num_days),
                (FlowStatsAgg::new(), TranslationAgg::new(make_map())),
            ),
        );
        // ...and recompute the same aggregates from materialized records.
        let datasets = synthesize_profiles(world, transition_residences(), &cfg(seed, 1, 1));
        prop_assert_eq!(streamed.len(), datasets.len());
        for ((summary, (scope, (stats, xlat))), ds) in streamed.iter().zip(&datasets) {
            prop_assert_eq!(summary.profile.key, ds.profile.key);
            let mut scope2 = ScopeFamilyAgg::new(par_cfg.num_days);
            let mut stats2 = FlowStatsAgg::new();
            let mut xlat2 = TranslationAgg::new(make_map());
            drain_into(&ds.flows, &mut scope2);
            drain_into(&ds.flows, &mut stats2);
            drain_into(&ds.flows, &mut xlat2);
            prop_assert_eq!(scope, &scope2);
            prop_assert_eq!(stats, &stats2);
            prop_assert_eq!(&xlat.bytes, &xlat2.bytes);
            prop_assert_eq!(&xlat.flows, &xlat2.flows);
        }
    }
}
