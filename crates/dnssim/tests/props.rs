//! Property tests for DNS resolution over randomly generated zones.

use dnssim::{LookupOutcome, Name, Resolver, ZoneDb};
use iputil::Family;
use proptest::prelude::*;

/// A random zone: a set of names with random A/AAAA records plus random
/// CNAMEs (possibly forming chains or loops).
fn arb_zone() -> impl Strategy<Value = (ZoneDb, Vec<Name>)> {
    (
        proptest::collection::vec((0u8..30, any::<bool>(), any::<bool>()), 1..25),
        proptest::collection::vec((0u8..30, 0u8..30), 0..12),
    )
        .prop_map(|(hosts, cnames)| {
            let mut db = ZoneDb::new();
            let name = |i: u8| Name::new(&format!("n{i}.prop.test"));
            let mut names = Vec::new();
            for (i, has_a, has_aaaa) in hosts {
                let n = name(i);
                names.push(n.clone());
                if has_a {
                    db.add_a(n.clone(), std::net::Ipv4Addr::new(192, 0, 2, i));
                }
                if has_aaaa {
                    db.add_aaaa(n.clone(), format!("2001:db8::{i:x}").parse().unwrap());
                }
            }
            for (from, to) in cnames {
                if from != to {
                    let alias = name(from);
                    // CNAME replaces other records at the name in resolution
                    // order; the resolver must cope either way.
                    db.add_cname(alias.clone(), name(to));
                    names.push(alias);
                }
            }
            names.sort();
            names.dedup();
            (db, names)
        })
}

proptest! {
    /// The resolver terminates on every name in every zone, and successful
    /// answers only carry addresses of the requested family.
    #[test]
    fn resolver_total_and_family_correct((db, names) in arb_zone()) {
        let r = Resolver::new(&db);
        for n in &names {
            for family in [Family::V4, Family::V6] {
                match r.resolve(n, family) {
                    LookupOutcome::Answers(a) => {
                        prop_assert!(!a.addresses.is_empty());
                        for addr in &a.addresses {
                            prop_assert_eq!(Family::of(*addr), family);
                        }
                        prop_assert!(!a.chain.is_empty());
                        prop_assert_eq!(&a.chain[0], n);
                    }
                    LookupOutcome::NoData { chain, .. } => {
                        prop_assert!(!chain.is_empty());
                    }
                    LookupOutcome::NxDomain
                    | LookupOutcome::ServFail
                    | LookupOutcome::Timeout => {}
                }
            }
        }
    }

    /// CNAME chains never exceed the depth limit plus the query name.
    #[test]
    fn chains_are_bounded((db, names) in arb_zone()) {
        let r = Resolver::new(&db);
        for n in &names {
            let chain = r.cname_chain(n);
            prop_assert!(chain.len() <= dnssim::resolver::MAX_CNAME_DEPTH + 1);
            // The chain is loop-free.
            let set: std::collections::HashSet<_> = chain.iter().collect();
            prop_assert_eq!(set.len(), chain.len());
        }
    }

    /// `has_family` agrees with `resolve(...).is_success()`.
    #[test]
    fn has_family_consistent((db, names) in arb_zone()) {
        let r = Resolver::new(&db);
        for n in &names {
            for family in [Family::V4, Family::V6] {
                prop_assert_eq!(
                    r.has_family(n, family),
                    r.resolve(n, family).is_success()
                );
            }
        }
    }

    /// A name with no records and no CNAME is NXDOMAIN in both families.
    #[test]
    fn absent_names_are_nxdomain((db, _) in arb_zone(), probe in 100u8..120) {
        let r = Resolver::new(&db);
        let n = Name::new(&format!("n{probe}.prop.test"));
        prop_assert_eq!(r.resolve(&n, Family::V4), LookupOutcome::NxDomain);
        prop_assert_eq!(r.resolve(&n, Family::V6), LookupOutcome::NxDomain);
    }
}
