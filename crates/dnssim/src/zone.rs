//! The zone database: every record in the simulated Internet, plus failure
//! injection.

use crate::name::Name;
use crate::record::{QueryType, RecordData};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Injected failure behaviour for a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// The authoritative server answers SERVFAIL.
    ServFail,
    /// Queries are dropped; the resolver gives up after its timeout.
    Timeout,
}

/// All DNS state of the simulated Internet.
///
/// ```
/// use dnssim::{ZoneDb, Name, QueryType, RecordData};
/// let mut db = ZoneDb::new();
/// db.add_a("example.com".into(), "192.0.2.10".parse().unwrap());
/// db.add_aaaa("example.com".into(), "2001:db8::10".parse().unwrap());
/// assert_eq!(db.lookup(&Name::new("example.com"), QueryType::A).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ZoneDb {
    records: HashMap<Name, Vec<RecordData>>,
    reverse: HashMap<IpAddr, Name>,
    failures: HashMap<Name, FailureMode>,
}

impl ZoneDb {
    /// An empty database.
    pub fn new() -> ZoneDb {
        ZoneDb::default()
    }

    /// Number of owner names with at least one record.
    pub fn name_count(&self) -> usize {
        self.records.len()
    }

    /// Add an arbitrary record.
    pub fn add(&mut self, name: Name, data: RecordData) {
        let recs = self.records.entry(name).or_default();
        if !recs.contains(&data) {
            recs.push(data);
        }
    }

    /// Add an `A` record.
    pub fn add_a(&mut self, name: Name, addr: Ipv4Addr) {
        self.add(name, RecordData::A(addr));
    }

    /// Add an `AAAA` record.
    pub fn add_aaaa(&mut self, name: Name, addr: Ipv6Addr) {
        self.add(name, RecordData::Aaaa(addr));
    }

    /// Add a `CNAME` from `alias` to `target`.
    ///
    /// # Panics
    /// Panics on a self-alias, which would be a generator bug.
    pub fn add_cname(&mut self, alias: Name, target: Name) {
        assert_ne!(alias, target, "CNAME to self: {alias}");
        self.add(alias, RecordData::Cname(target));
    }

    /// Register a reverse (PTR) mapping for an address.
    pub fn map_reverse(&mut self, addr: IpAddr, name: Name) {
        self.reverse.insert(addr, name);
    }

    /// Inject a failure mode for a name (applies to all query types).
    pub fn inject_failure(&mut self, name: Name, mode: FailureMode) {
        self.failures.insert(name, mode);
    }

    /// Remove an injected failure.
    pub fn clear_failure(&mut self, name: &Name) {
        self.failures.remove(name);
    }

    /// The injected failure mode for a name, if any.
    pub fn failure_for(&self, name: &Name) -> Option<FailureMode> {
        self.failures.get(name).copied()
    }

    /// Does the name own any record at all (used for NXDOMAIN vs NODATA)?
    pub fn exists(&self, name: &Name) -> bool {
        self.records.contains_key(name)
    }

    /// Raw lookup of records of one type at a name (no CNAME following, no
    /// failure simulation — that is the resolver's job).
    pub fn lookup(&self, name: &Name, qtype: QueryType) -> Vec<RecordData> {
        self.records
            .get(name)
            .map(|recs| {
                recs.iter()
                    .filter(|r| r.qtype() == qtype)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The CNAME target at a name, if any.
    pub fn cname_target(&self, name: &Name) -> Option<Name> {
        self.records.get(name).and_then(|recs| {
            recs.iter().find_map(|r| match r {
                RecordData::Cname(t) => Some(t.clone()),
                _ => None,
            })
        })
    }

    /// Reverse lookup (PTR) for an address.
    pub fn reverse_lookup(&self, addr: IpAddr) -> Option<&Name> {
        self.reverse.get(&addr)
    }

    /// Iterate over every owner name, in sorted order (the backing map is
    /// hash-ordered; sorting keeps every caller deterministic).
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        let mut names: Vec<&Name> = self.records.keys().collect(); // tidy:allow(nondeterministic-iteration): collected and sorted on the next line
        names.sort();
        names.into_iter()
    }

    /// Remove every record at a name (used by epoch evolution when a domain
    /// goes NXDOMAIN between snapshots).
    pub fn remove_name(&mut self, name: &Name) {
        self.records.remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut db = ZoneDb::new();
        db.add_a("a.test".into(), "192.0.2.1".parse().unwrap());
        db.add_a("a.test".into(), "192.0.2.2".parse().unwrap());
        db.add_aaaa("a.test".into(), "2001:db8::1".parse().unwrap());
        assert_eq!(db.lookup(&"a.test".into(), QueryType::A).len(), 2);
        assert_eq!(db.lookup(&"a.test".into(), QueryType::Aaaa).len(), 1);
        assert_eq!(db.lookup(&"a.test".into(), QueryType::Cname).len(), 0);
        assert!(db.exists(&"a.test".into()));
        assert!(!db.exists(&"b.test".into()));
    }

    #[test]
    fn duplicate_records_deduplicated() {
        let mut db = ZoneDb::new();
        let ip = "192.0.2.1".parse().unwrap();
        db.add_a("a.test".into(), ip);
        db.add_a("a.test".into(), ip);
        assert_eq!(db.lookup(&"a.test".into(), QueryType::A).len(), 1);
    }

    #[test]
    fn cname_helpers() {
        let mut db = ZoneDb::new();
        db.add_cname("www.a.test".into(), "cdn.b.test".into());
        assert_eq!(
            db.cname_target(&"www.a.test".into()),
            Some(Name::new("cdn.b.test"))
        );
        assert_eq!(db.cname_target(&"a.test".into()), None);
    }

    #[test]
    #[should_panic(expected = "CNAME to self")]
    fn rejects_self_cname() {
        let mut db = ZoneDb::new();
        db.add_cname("x.test".into(), "x.test".into());
    }

    #[test]
    fn reverse_mapping() {
        let mut db = ZoneDb::new();
        let ip: IpAddr = "2001:db8::7".parse().unwrap();
        db.map_reverse(ip, "server.example.net".into());
        assert_eq!(
            db.reverse_lookup(ip).unwrap().as_str(),
            "server.example.net"
        );
        assert!(db.reverse_lookup("192.0.2.1".parse().unwrap()).is_none());
    }

    #[test]
    fn failure_injection() {
        let mut db = ZoneDb::new();
        db.inject_failure("broken.test".into(), FailureMode::ServFail);
        assert_eq!(
            db.failure_for(&"broken.test".into()),
            Some(FailureMode::ServFail)
        );
        db.clear_failure(&"broken.test".into());
        assert_eq!(db.failure_for(&"broken.test".into()), None);
    }

    #[test]
    fn remove_name() {
        let mut db = ZoneDb::new();
        db.add_a("gone.test".into(), "192.0.2.1".parse().unwrap());
        db.remove_name(&"gone.test".into());
        assert!(!db.exists(&"gone.test".into()));
    }
}
