//! # dnssim — a DNS simulator for measurement pipelines
//!
//! Server-side classification (§4 of the paper) and cloud service
//! identification (§5.3) both hinge on DNS behaviour:
//!
//! * a site is **IPv4-only** iff its apex/`www` name has an `A` record but no
//!   `AAAA`;
//! * crawl **loading failures** split into `NXDOMAIN` and other errors
//!   (SERVFAIL, timeouts);
//! * cloud *services* are identified by following **CNAME chains** to suffixes
//!   like `*.s3.amazonaws.com` (He et al., IMC 2013);
//! * client-side service attribution (§3.4) uses **reverse DNS** on
//!   destination addresses.
//!
//! This crate models exactly those mechanics: a [`zone::ZoneDb`] mapping
//! [`name::Name`]s to records ([`record::RecordData`]: `A`, `AAAA`, `CNAME`,
//! `PTR`, `NS`, `TXT`), failure injection per name, and a [`resolver::Resolver`]
//! that follows CNAME chains with loop detection and answers reverse queries.
//!
//! Like the rest of the suite it is deterministic and offline: the "network"
//! is a lookup table, not sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod name;
pub mod record;
pub mod resolver;
pub mod zone;

pub use name::{Name, NameId, NameTable};
pub use record::{QueryType, Record, RecordData};
pub use resolver::{
    AddrAnswer, AddrsOutcome, LookupOutcome, ResolveAddrs, Resolver, ResolverConfig,
};
pub use zone::{FailureMode, ZoneDb};
