//! DNS record and query types.

use crate::name::Name;
use std::net::{Ipv4Addr, Ipv6Addr};

/// The data of one resource record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RecordData {
    /// IPv4 address record.
    A(Ipv4Addr),
    /// IPv6 address record.
    Aaaa(Ipv6Addr),
    /// Canonical-name alias.
    Cname(Name),
    /// Reverse pointer.
    Ptr(Name),
    /// Delegation.
    Ns(Name),
    /// Free-form text (used by tests and examples).
    Txt(String),
}

impl RecordData {
    /// The query type this record answers.
    pub fn qtype(&self) -> QueryType {
        match self {
            RecordData::A(_) => QueryType::A,
            RecordData::Aaaa(_) => QueryType::Aaaa,
            RecordData::Cname(_) => QueryType::Cname,
            RecordData::Ptr(_) => QueryType::Ptr,
            RecordData::Ns(_) => QueryType::Ns,
            RecordData::Txt(_) => QueryType::Txt,
        }
    }
}

/// A complete record: owner name plus data (TTLs are irrelevant to the
/// analyses and omitted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Record payload.
    pub data: RecordData,
}

/// Query types supported by the resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// IPv4 address.
    A,
    /// IPv6 address.
    Aaaa,
    /// Canonical name.
    Cname,
    /// Reverse pointer.
    Ptr,
    /// Delegation.
    Ns,
    /// Text.
    Txt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_data_qtype() {
        assert_eq!(
            RecordData::A("1.2.3.4".parse().unwrap()).qtype(),
            QueryType::A
        );
        assert_eq!(
            RecordData::Aaaa("::1".parse().unwrap()).qtype(),
            QueryType::Aaaa
        );
        assert_eq!(
            RecordData::Cname(Name::new("x.y")).qtype(),
            QueryType::Cname
        );
        assert_eq!(RecordData::Ptr(Name::new("x.y")).qtype(), QueryType::Ptr);
        assert_eq!(RecordData::Ns(Name::new("ns1.y")).qtype(), QueryType::Ns);
        assert_eq!(RecordData::Txt("v=1".into()).qtype(), QueryType::Txt);
    }
}
