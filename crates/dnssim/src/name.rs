//! Domain names: normalized, comparable, cheap to clone.
//!
//! Names are stored lowercase without a trailing dot. The type is used
//! pervasively (every site, resource, CNAME target and reverse mapping), so
//! it wraps an `Arc<str>` — clones are reference bumps.

use std::fmt;
use std::sync::Arc;

/// A normalized DNS name (lowercase, no trailing dot).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// Normalize and wrap a name. Empty input becomes the root name `""`.
    pub fn new(s: &str) -> Name {
        let trimmed = s.trim_end_matches('.');
        if trimmed
            .chars()
            .all(|c| c.is_ascii_lowercase() || !c.is_ascii_alphabetic())
        {
            Name(Arc::from(trimmed))
        } else {
            Name(Arc::from(trimmed.to_ascii_lowercase().as_str()))
        }
    }

    /// The textual form (lowercase, no trailing dot).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels from leftmost (most specific) to rightmost (TLD).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.').filter(|l| !l.is_empty())
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The parent domain (`www.example.com` → `example.com`), or `None` at a
    /// single label.
    pub fn parent(&self) -> Option<Name> {
        let (_, rest) = self.0.split_once('.')?;
        Some(Name::new(rest))
    }

    /// True if `self` equals `suffix` or ends with `.suffix`.
    pub fn is_subdomain_of(&self, suffix: &Name) -> bool {
        if self.0.len() == suffix.0.len() {
            return self.0 == suffix.0;
        }
        self.0.len() > suffix.0.len()
            && self.0.ends_with(suffix.0.as_ref())
            && self.0.as_bytes()[self.0.len() - suffix.0.len() - 1] == b'.'
    }

    /// Prepend a label: `Name("example.com").child("www")` → `www.example.com`.
    pub fn child(&self, label: &str) -> Name {
        debug_assert!(!label.contains('.'), "child label must be a single label");
        Name::new(&format!("{label}.{}", self.0))
    }

    /// The last `n` labels as a suffix name (`a.b.c.d`.suffix(2) → `c.d`).
    pub fn suffix(&self, n: usize) -> Name {
        let labels: Vec<&str> = self.labels().collect();
        if n >= labels.len() {
            return self.clone();
        }
        Name::new(&labels[labels.len() - n..].join("."))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::new(&s)
    }
}

impl serde::Serialize for Name {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> serde::Deserialize<'de> for Name {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Name, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Name::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_case_and_trailing_dot() {
        assert_eq!(Name::new("WWW.Example.COM.").as_str(), "www.example.com");
        assert_eq!(Name::new("already.lower").as_str(), "already.lower");
    }

    #[test]
    fn labels_and_parent() {
        let n = Name::new("a.b.example.com");
        assert_eq!(
            n.labels().collect::<Vec<_>>(),
            vec!["a", "b", "example", "com"]
        );
        assert_eq!(n.label_count(), 4);
        assert_eq!(n.parent().unwrap().as_str(), "b.example.com");
        assert_eq!(Name::new("com").parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let base = Name::new("example.com");
        assert!(Name::new("example.com").is_subdomain_of(&base));
        assert!(Name::new("www.example.com").is_subdomain_of(&base));
        assert!(Name::new("a.b.example.com").is_subdomain_of(&base));
        assert!(!Name::new("badexample.com").is_subdomain_of(&base));
        assert!(!Name::new("example.org").is_subdomain_of(&base));
        assert!(!Name::new("com").is_subdomain_of(&base));
    }

    #[test]
    fn child_and_suffix() {
        let n = Name::new("example.com");
        assert_eq!(n.child("cdn").as_str(), "cdn.example.com");
        let deep = Name::new("x.y.z.example.com");
        assert_eq!(deep.suffix(2).as_str(), "example.com");
        assert_eq!(deep.suffix(99).as_str(), "x.y.z.example.com");
    }

    #[test]
    fn display_roundtrip() {
        let n = Name::new("Foo.Bar.");
        assert_eq!(format!("{n}"), "foo.bar");
        assert_eq!(Name::from("foo.bar"), n);
    }
}
