//! Domain names: normalized, comparable, cheap to clone — and internable.
//!
//! Names are stored lowercase without a trailing dot. The type is used
//! pervasively (every site, resource, CNAME target and reverse mapping), so
//! it wraps an `Arc<str>` — clones are reference bumps.
//!
//! Comparing and hashing a [`Name`] still walks the whole string, which is
//! what the hot attribution paths (crawl FQDN dedup, per-domain flow
//! aggregation, top-list ranking) used to pay per record. A [`NameTable`]
//! interns names into dense [`NameId`]s (`u32` symbols, first-seen order)
//! so those paths hash each distinct string once and key everything else by
//! integer.

use iputil::sym::{Sym, SymbolTable};
use std::fmt;
use std::sync::Arc;

/// A normalized DNS name (lowercase, no trailing dot).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// Normalize and wrap a name. Empty input becomes the root name `""`.
    pub fn new(s: &str) -> Name {
        let trimmed = s.trim_end_matches('.');
        if trimmed
            .chars()
            .all(|c| c.is_ascii_lowercase() || !c.is_ascii_alphabetic())
        {
            Name(Arc::from(trimmed))
        } else {
            Name(Arc::from(trimmed.to_ascii_lowercase().as_str()))
        }
    }

    /// The textual form (lowercase, no trailing dot).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels from leftmost (most specific) to rightmost (TLD).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.').filter(|l| !l.is_empty())
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The parent domain (`www.example.com` → `example.com`), or `None` at a
    /// single label.
    pub fn parent(&self) -> Option<Name> {
        let (_, rest) = self.0.split_once('.')?;
        Some(Name::new(rest))
    }

    /// True if `self` equals `suffix` or ends with `.suffix`.
    pub fn is_subdomain_of(&self, suffix: &Name) -> bool {
        if self.0.len() == suffix.0.len() {
            return self.0 == suffix.0;
        }
        self.0.len() > suffix.0.len()
            && self.0.ends_with(suffix.0.as_ref())
            && self.0.as_bytes()[self.0.len() - suffix.0.len() - 1] == b'.'
    }

    /// Prepend a label: `Name("example.com").child("www")` → `www.example.com`.
    pub fn child(&self, label: &str) -> Name {
        debug_assert!(!label.contains('.'), "child label must be a single label");
        Name::new(&format!("{label}.{}", self.0))
    }

    /// The last `n` labels as a suffix name (`a.b.c.d`.suffix(2) → `c.d`).
    pub fn suffix(&self, n: usize) -> Name {
        let labels: Vec<&str> = self.labels().collect();
        if n >= labels.len() {
            return self.clone();
        }
        Name::new(&labels[labels.len() - n..].join("."))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::new(&s)
    }
}

/// The interned id of a [`Name`] in a [`NameTable`]: a dense `u32` symbol,
/// valid only against the table that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(Sym);

impl NameId {
    /// The dense index (0-based, first-interned order).
    pub fn index(self) -> usize {
        self.0.index()
    }

    /// Reconstruct an id from a dense index (caller asserts provenance).
    pub fn from_index(index: usize) -> NameId {
        NameId(Sym::from_index(index))
    }
}

/// An interning table over [`Name`]s: each distinct name gets a dense
/// [`NameId`] in first-seen order.
///
/// ```
/// use dnssim::{Name, NameTable};
/// let mut t = NameTable::new();
/// let a = t.intern(&Name::new("example.com"));
/// let b = t.intern(&Name::new("example.org"));
/// assert_eq!(t.intern(&Name::new("example.com")), a);
/// assert_ne!(a, b);
/// assert_eq!(t.resolve(a).as_str(), "example.com");
/// ```
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    table: SymbolTable<Name>,
}

impl NameTable {
    /// An empty table.
    pub fn new() -> NameTable {
        NameTable::default()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Intern a name (idempotent; the id is stable for the table's life).
    pub fn intern(&mut self, name: &Name) -> NameId {
        NameId(self.table.intern(name))
    }

    /// [`NameTable::intern`] plus whether the name was new — the interned
    /// replacement for `HashSet<Name>::insert` dedup.
    pub fn intern_full(&mut self, name: &Name) -> (NameId, bool) {
        let (sym, new) = self.table.intern_full(name);
        (NameId(sym), new)
    }

    /// The id of an already-interned name.
    pub fn lookup(&self, name: &Name) -> Option<NameId> {
        self.table.lookup(name).map(NameId)
    }

    /// The name behind an id.
    ///
    /// # Panics
    /// Panics when the id did not come from this table.
    pub fn resolve(&self, id: NameId) -> &Name {
        self.table.resolve(id.0)
    }

    /// All interned names, in id order.
    pub fn as_slice(&self) -> &[Name] {
        self.table.as_slice()
    }

    /// Iterate `(id, name)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &Name)> {
        self.table.iter().map(|(sym, name)| (NameId(sym), name))
    }
}

impl serde::Serialize for Name {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> serde::Deserialize<'de> for Name {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Name, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Name::new(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_case_and_trailing_dot() {
        assert_eq!(Name::new("WWW.Example.COM.").as_str(), "www.example.com");
        assert_eq!(Name::new("already.lower").as_str(), "already.lower");
    }

    #[test]
    fn labels_and_parent() {
        let n = Name::new("a.b.example.com");
        assert_eq!(
            n.labels().collect::<Vec<_>>(),
            vec!["a", "b", "example", "com"]
        );
        assert_eq!(n.label_count(), 4);
        assert_eq!(n.parent().unwrap().as_str(), "b.example.com");
        assert_eq!(Name::new("com").parent(), None);
    }

    #[test]
    fn subdomain_relation() {
        let base = Name::new("example.com");
        assert!(Name::new("example.com").is_subdomain_of(&base));
        assert!(Name::new("www.example.com").is_subdomain_of(&base));
        assert!(Name::new("a.b.example.com").is_subdomain_of(&base));
        assert!(!Name::new("badexample.com").is_subdomain_of(&base));
        assert!(!Name::new("example.org").is_subdomain_of(&base));
        assert!(!Name::new("com").is_subdomain_of(&base));
    }

    #[test]
    fn child_and_suffix() {
        let n = Name::new("example.com");
        assert_eq!(n.child("cdn").as_str(), "cdn.example.com");
        let deep = Name::new("x.y.z.example.com");
        assert_eq!(deep.suffix(2).as_str(), "example.com");
        assert_eq!(deep.suffix(99).as_str(), "x.y.z.example.com");
    }

    #[test]
    fn interning_is_dense_and_normalized() {
        let mut t = NameTable::new();
        let a = t.intern(&Name::new("WWW.Example.COM."));
        let b = t.intern(&Name::new("other.test"));
        // Normalized equal names share an id.
        let (a2, new) = t.intern_full(&Name::new("www.example.com"));
        assert_eq!(a, a2);
        assert!(!new);
        assert_eq!((a.index(), b.index()), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a).as_str(), "www.example.com");
        assert_eq!(t.lookup(&Name::new("other.test")), Some(b));
        assert_eq!(t.lookup(&Name::new("absent.test")), None);
        let order: Vec<&str> = t.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(order, vec!["www.example.com", "other.test"]);
    }

    #[test]
    fn display_roundtrip() {
        let n = Name::new("Foo.Bar.");
        assert_eq!(format!("{n}"), "foo.bar");
        assert_eq!(Name::from("foo.bar"), n);
    }
}
