//! The stub resolver: CNAME chains, failure semantics, reverse queries.

use crate::name::Name;
use crate::record::{QueryType, RecordData};
use crate::zone::{FailureMode, ZoneDb};
use iputil::Family;
use std::net::IpAddr;

/// Maximum CNAME chain length before the resolver declares a loop
/// (real resolvers use similar small limits).
pub const MAX_CNAME_DEPTH: usize = 8;

/// Outcome of an address resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Got at least one address.
    Answers(AddrAnswer),
    /// The final name does not exist at all.
    NxDomain,
    /// The name exists but has no records of the requested family
    /// (NODATA in DNS terms — *the* signal for "IPv4-only domain").
    NoData {
        /// The end of the CNAME chain that was followed.
        final_name: Name,
        /// The chain of names traversed, starting with the query name.
        chain: Vec<Name>,
    },
    /// Server failure (injected, or a CNAME loop).
    ServFail,
    /// Query timed out (injected).
    Timeout,
}

impl LookupOutcome {
    /// The resolved addresses, if any.
    pub fn addresses(&self) -> &[IpAddr] {
        match self {
            LookupOutcome::Answers(a) => &a.addresses,
            _ => &[],
        }
    }

    /// True when the lookup produced at least one address.
    pub fn is_success(&self) -> bool {
        matches!(self, LookupOutcome::Answers(_))
    }
}

/// A successful address answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrAnswer {
    /// Resolved addresses (all of the requested family).
    pub addresses: Vec<IpAddr>,
    /// The CNAME chain traversed, starting with the query name and ending
    /// with the name owning the address records.
    pub chain: Vec<Name>,
}

impl AddrAnswer {
    /// The name that actually owned the address records.
    pub fn final_name(&self) -> &Name {
        self.chain.last().expect("chain always has the query name")
    }
}

/// Outcome of a chainless address resolution ([`Resolver::resolve_addrs`]).
///
/// The lightweight sibling of [`LookupOutcome`]: same failure semantics, no
/// CNAME-chain `Vec<Name>` allocation. Callers that never read the chain
/// (the Happy Eyeballs race runs twice per page load and once per
/// (day, service) pair in traffic synthesis) use this on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrsOutcome {
    /// Got at least one address.
    Answers(Vec<IpAddr>),
    /// The final name does not exist at all.
    NxDomain,
    /// The name exists but has no records of the requested family.
    NoData,
    /// Server failure (injected, or a CNAME chain that never terminates).
    ServFail,
    /// Query timed out (injected).
    Timeout,
}

impl AddrsOutcome {
    /// The resolved addresses, if any.
    pub fn addresses(&self) -> &[IpAddr] {
        match self {
            AddrsOutcome::Answers(addrs) => addrs,
            _ => &[],
        }
    }

    /// True when the lookup produced at least one address.
    pub fn is_success(&self) -> bool {
        matches!(self, AddrsOutcome::Answers(_))
    }
}

/// Timing and retry parameters of a stub resolver.
///
/// Historically the "a timed-out query takes 5 s to come back" constant was
/// hard-coded inside the Happy Eyeballs race; moving it here gives fault
/// schedules and Happy Eyeballs a single shared source of truth. The default
/// reproduces the historical behaviour exactly: a 5 s timeout and a single
/// attempt (no retries).
///
/// All durations are microseconds, matching the `netsim`/`flowmon` clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolverConfig {
    /// How long a [`AddrsOutcome::Timeout`] answer takes to "arrive".
    pub timeout: u64,
    /// Total query attempts (1 = no retries, the historical behaviour).
    /// Only failure-aware resolvers (the fault plane's retrying wrapper)
    /// make more than one attempt; the default timed path reports the
    /// outcome of a single query.
    pub attempts: u32,
    /// Delay before the first retry; doubles on each further retry
    /// (exponential backoff).
    pub backoff_base: u64,
    /// Upper bound on the deterministic jitter a retrying resolver may add
    /// to each backoff delay.
    pub backoff_jitter: u64,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            timeout: 5_000_000,
            attempts: 1,
            backoff_base: 250_000,
            backoff_jitter: 50_000,
        }
    }
}

/// Anything that can resolve a name to addresses of one family.
///
/// The plain [`Resolver`] implements this over a [`ZoneDb`]; translation
/// layers (a DNS64 recursive resolver synthesizing `AAAA` answers from `A`
/// records) implement it by wrapping another resolver. Consumers that only
/// need addresses — Happy Eyeballs, traffic synthesis — take
/// `&impl ResolveAddrs` so they work unchanged behind any resolution path.
pub trait ResolveAddrs {
    /// Resolve `name` to addresses of `family` (chainless fast path).
    fn resolve_addrs(&self, name: &Name, family: Family) -> AddrsOutcome;

    /// Resolve `name` and report how long the answer took to arrive.
    ///
    /// `base_latency` is the round-trip a healthy answer takes; a
    /// [`AddrsOutcome::Timeout`] instead takes [`ResolverConfig::timeout`].
    /// The default implementation performs a single query; failure-aware
    /// wrappers (the fault plane's retrying resolver) override this to model
    /// bounded retries with backoff, accumulating the elapsed time.
    fn resolve_addrs_timed(
        &self,
        name: &Name,
        family: Family,
        base_latency: u64,
        config: &ResolverConfig,
    ) -> (AddrsOutcome, u64) {
        let outcome = self.resolve_addrs(name, family);
        let latency = match outcome {
            AddrsOutcome::Timeout => config.timeout,
            _ => base_latency,
        };
        (outcome, latency)
    }
}

impl<T: ResolveAddrs + ?Sized> ResolveAddrs for &T {
    fn resolve_addrs(&self, name: &Name, family: Family) -> AddrsOutcome {
        (**self).resolve_addrs(name, family)
    }

    fn resolve_addrs_timed(
        &self,
        name: &Name,
        family: Family,
        base_latency: u64,
        config: &ResolverConfig,
    ) -> (AddrsOutcome, u64) {
        (**self).resolve_addrs_timed(name, family, base_latency, config)
    }
}

/// A stub resolver over a [`ZoneDb`].
#[derive(Debug, Clone, Copy)]
pub struct Resolver<'a> {
    db: &'a ZoneDb,
}

impl ResolveAddrs for Resolver<'_> {
    fn resolve_addrs(&self, name: &Name, family: Family) -> AddrsOutcome {
        Resolver::resolve_addrs(self, name, family)
    }
}

impl<'a> Resolver<'a> {
    /// Create a resolver reading from `db`.
    pub fn new(db: &'a ZoneDb) -> Resolver<'a> {
        Resolver { db }
    }

    /// Resolve `name` to addresses of `family`, following CNAME chains.
    pub fn resolve(&self, name: &Name, family: Family) -> LookupOutcome {
        obs::counter_add("dns.queries", 1);
        let qtype = match family {
            Family::V4 => QueryType::A,
            Family::V6 => QueryType::Aaaa,
        };
        let mut chain = vec![name.clone()];
        let mut current = name.clone();
        for _ in 0..=MAX_CNAME_DEPTH {
            if let Some(mode) = self.db.failure_for(&current) {
                return match mode {
                    FailureMode::ServFail => LookupOutcome::ServFail,
                    FailureMode::Timeout => LookupOutcome::Timeout,
                };
            }
            // CNAME takes precedence over other data at a name.
            if let Some(target) = self.db.cname_target(&current) {
                if chain.contains(&target) {
                    return LookupOutcome::ServFail; // loop
                }
                chain.push(target.clone());
                current = target;
                continue;
            }
            let answers: Vec<IpAddr> = self
                .db
                .lookup(&current, qtype)
                .into_iter()
                .filter_map(|r| match r {
                    RecordData::A(a) => Some(IpAddr::V4(a)),
                    RecordData::Aaaa(a) => Some(IpAddr::V6(a)),
                    _ => None,
                })
                .collect();
            if !answers.is_empty() {
                return LookupOutcome::Answers(AddrAnswer {
                    addresses: answers,
                    chain,
                });
            }
            return if self.db.exists(&current) {
                LookupOutcome::NoData {
                    final_name: current,
                    chain,
                }
            } else {
                LookupOutcome::NxDomain
            };
        }
        LookupOutcome::ServFail // chain too deep
    }

    /// Resolve `name` to addresses of `family` without materializing the
    /// CNAME chain — the allocation-free fast path for callers that only
    /// need addresses (Happy Eyeballs, traffic synthesis).
    ///
    /// Failure semantics are identical to [`Resolver::resolve`]: CNAME
    /// loops surface as [`AddrsOutcome::ServFail`] via the depth limit
    /// (a loop can never terminate within [`MAX_CNAME_DEPTH`]).
    pub fn resolve_addrs(&self, name: &Name, family: Family) -> AddrsOutcome {
        obs::counter_add("dns.queries", 1);
        let outcome = self.resolve_addrs_inner(name, family);
        match outcome {
            AddrsOutcome::ServFail => obs::counter_add("dns.servfail", 1),
            AddrsOutcome::Timeout => obs::counter_add("dns.timeout", 1),
            _ => {}
        }
        outcome
    }

    fn resolve_addrs_inner(&self, name: &Name, family: Family) -> AddrsOutcome {
        let qtype = match family {
            Family::V4 => QueryType::A,
            Family::V6 => QueryType::Aaaa,
        };
        let mut current = name.clone();
        for _ in 0..=MAX_CNAME_DEPTH {
            if let Some(mode) = self.db.failure_for(&current) {
                return match mode {
                    FailureMode::ServFail => AddrsOutcome::ServFail,
                    FailureMode::Timeout => AddrsOutcome::Timeout,
                };
            }
            // CNAME takes precedence over other data at a name.
            if let Some(target) = self.db.cname_target(&current) {
                current = target;
                continue;
            }
            let answers: Vec<IpAddr> = self
                .db
                .lookup(&current, qtype)
                .into_iter()
                .filter_map(|r| match r {
                    RecordData::A(a) => Some(IpAddr::V4(a)),
                    RecordData::Aaaa(a) => Some(IpAddr::V6(a)),
                    _ => None,
                })
                .collect();
            if !answers.is_empty() {
                return AddrsOutcome::Answers(answers);
            }
            return if self.db.exists(&current) {
                AddrsOutcome::NoData
            } else {
                AddrsOutcome::NxDomain
            };
        }
        AddrsOutcome::ServFail // chain too deep or looping
    }

    /// Does the name (following CNAMEs) have any address of this family?
    pub fn has_family(&self, name: &Name, family: Family) -> bool {
        self.resolve_addrs(name, family).is_success()
    }

    /// Follow the CNAME chain without resolving addresses; returns every
    /// name traversed including the query name. Used by the cloud service
    /// identifier (He et al. style CNAME analysis).
    pub fn cname_chain(&self, name: &Name) -> Vec<Name> {
        let mut chain = vec![name.clone()];
        let mut current = name.clone();
        for _ in 0..MAX_CNAME_DEPTH {
            match self.db.cname_target(&current) {
                Some(target) if !chain.contains(&target) => {
                    chain.push(target.clone());
                    current = target;
                }
                _ => break,
            }
        }
        chain
    }

    /// Reverse (PTR) lookup.
    pub fn reverse(&self, addr: IpAddr) -> Option<Name> {
        self.db.reverse_lookup(addr).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> ZoneDb {
        let mut db = ZoneDb::new();
        db.add_a("dual.test".into(), "192.0.2.1".parse().unwrap());
        db.add_aaaa("dual.test".into(), "2001:db8::1".parse().unwrap());
        db.add_a("v4only.test".into(), "192.0.2.2".parse().unwrap());
        db.add_aaaa("v6only.test".into(), "2001:db8::2".parse().unwrap());
        db.add_cname("www.dual.test".into(), "dual.test".into());
        db.add_cname("cdn.site.test".into(), "edge.cloud.test".into());
        db.add_cname("edge.cloud.test".into(), "pop.cloud.test".into());
        db.add_a("pop.cloud.test".into(), "203.0.113.5".parse().unwrap());
        db
    }

    #[test]
    fn resolves_both_families() {
        let db = db();
        let r = Resolver::new(&db);
        let v4 = r.resolve(&"dual.test".into(), Family::V4);
        let v6 = r.resolve(&"dual.test".into(), Family::V6);
        assert_eq!(v4.addresses(), ["192.0.2.1".parse::<IpAddr>().unwrap()]);
        assert_eq!(v6.addresses(), ["2001:db8::1".parse::<IpAddr>().unwrap()]);
    }

    #[test]
    fn nodata_vs_nxdomain() {
        let db = db();
        let r = Resolver::new(&db);
        match r.resolve(&"v4only.test".into(), Family::V6) {
            LookupOutcome::NoData { final_name, .. } => {
                assert_eq!(final_name.as_str(), "v4only.test")
            }
            other => panic!("expected NoData, got {other:?}"),
        }
        assert_eq!(
            r.resolve(&"missing.test".into(), Family::V4),
            LookupOutcome::NxDomain
        );
    }

    #[test]
    fn follows_cname_chain() {
        let db = db();
        let r = Resolver::new(&db);
        match r.resolve(&"cdn.site.test".into(), Family::V4) {
            LookupOutcome::Answers(a) => {
                assert_eq!(a.addresses, ["203.0.113.5".parse::<IpAddr>().unwrap()]);
                let chain: Vec<&str> = a.chain.iter().map(|n| n.as_str()).collect();
                assert_eq!(
                    chain,
                    vec!["cdn.site.test", "edge.cloud.test", "pop.cloud.test"]
                );
                assert_eq!(a.final_name().as_str(), "pop.cloud.test");
            }
            other => panic!("expected answers, got {other:?}"),
        }
    }

    #[test]
    fn cname_loop_is_servfail() {
        let mut db = ZoneDb::new();
        db.add_cname("a.test".into(), "b.test".into());
        db.add_cname("b.test".into(), "a.test".into());
        let r = Resolver::new(&db);
        assert_eq!(
            r.resolve(&"a.test".into(), Family::V4),
            LookupOutcome::ServFail
        );
    }

    #[test]
    fn deep_chain_is_servfail() {
        let mut db = ZoneDb::new();
        for i in 0..12 {
            db.add_cname(
                format!("n{i}.test").into(),
                format!("n{}.test", i + 1).into(),
            );
        }
        let r = Resolver::new(&db);
        assert_eq!(
            r.resolve(&"n0.test".into(), Family::V4),
            LookupOutcome::ServFail
        );
    }

    #[test]
    fn injected_failures_surface() {
        let mut db = db();
        db.inject_failure("dual.test".into(), FailureMode::Timeout);
        let r = Resolver::new(&db);
        assert_eq!(
            r.resolve(&"dual.test".into(), Family::V4),
            LookupOutcome::Timeout
        );
        // Failure on a CNAME target also propagates.
        let mut db2 = ZoneDb::new();
        db2.add_cname("x.test".into(), "y.test".into());
        db2.inject_failure("y.test".into(), FailureMode::ServFail);
        let r2 = Resolver::new(&db2);
        assert_eq!(
            r2.resolve(&"x.test".into(), Family::V4),
            LookupOutcome::ServFail
        );
    }

    #[test]
    fn has_family_and_chain_helpers() {
        let db = db();
        let r = Resolver::new(&db);
        assert!(r.has_family(&"dual.test".into(), Family::V6));
        assert!(!r.has_family(&"v4only.test".into(), Family::V6));
        assert!(r.has_family(&"v6only.test".into(), Family::V6));
        assert!(!r.has_family(&"v6only.test".into(), Family::V4));
        let chain = r.cname_chain(&"cdn.site.test".into());
        assert_eq!(chain.len(), 3);
        let no_chain = r.cname_chain(&"dual.test".into());
        assert_eq!(no_chain.len(), 1);
    }

    #[test]
    fn resolve_addrs_agrees_with_resolve() {
        let mut db = db();
        db.add_cname("loop-a.test".into(), "loop-b.test".into());
        db.add_cname("loop-b.test".into(), "loop-a.test".into());
        db.inject_failure("broken.test".into(), FailureMode::ServFail);
        db.inject_failure("slow.test".into(), FailureMode::Timeout);
        let r = Resolver::new(&db);
        let names = [
            "dual.test",
            "v4only.test",
            "v6only.test",
            "www.dual.test",
            "cdn.site.test",
            "missing.test",
            "loop-a.test",
            "broken.test",
            "slow.test",
        ];
        for name in names {
            for family in [Family::V4, Family::V6] {
                let full = r.resolve(&name.into(), family);
                let fast = r.resolve_addrs(&name.into(), family);
                assert_eq!(full.addresses(), fast.addresses(), "{name} {family}");
                assert_eq!(full.is_success(), fast.is_success(), "{name} {family}");
                // Failure kinds line up variant-for-variant.
                let same_kind = matches!(
                    (&full, &fast),
                    (LookupOutcome::Answers(_), AddrsOutcome::Answers(_))
                        | (LookupOutcome::NxDomain, AddrsOutcome::NxDomain)
                        | (LookupOutcome::NoData { .. }, AddrsOutcome::NoData)
                        | (LookupOutcome::ServFail, AddrsOutcome::ServFail)
                        | (LookupOutcome::Timeout, AddrsOutcome::Timeout)
                );
                assert!(same_kind, "{name} {family}: {full:?} vs {fast:?}");
            }
        }
    }

    #[test]
    fn timed_default_single_query_uses_config_timeout() {
        let mut db = db();
        db.inject_failure("slow.test".into(), FailureMode::Timeout);
        let r = Resolver::new(&db);
        let cfg = ResolverConfig::default();
        let (ok, lat) = r.resolve_addrs_timed(&"dual.test".into(), Family::V4, 20_000, &cfg);
        assert!(ok.is_success());
        assert_eq!(lat, 20_000, "healthy answers arrive at base latency");
        let (to, lat) = r.resolve_addrs_timed(&"slow.test".into(), Family::V4, 20_000, &cfg);
        assert_eq!(to, AddrsOutcome::Timeout);
        assert_eq!(
            lat, cfg.timeout,
            "timeouts arrive after the configured timeout"
        );
        let short = ResolverConfig {
            timeout: 123,
            ..ResolverConfig::default()
        };
        let (_, lat) = r.resolve_addrs_timed(&"slow.test".into(), Family::V4, 20_000, &short);
        assert_eq!(lat, 123);
    }

    #[test]
    fn reverse_queries() {
        let mut db = db();
        db.map_reverse("203.0.113.5".parse().unwrap(), "pop.cloud.test".into());
        let r = Resolver::new(&db);
        assert_eq!(
            r.reverse("203.0.113.5".parse().unwrap()).unwrap().as_str(),
            "pop.cloud.test"
        );
        assert!(r.reverse("203.0.113.6".parse().unwrap()).is_none());
    }
}
