//! # happyeyeballs — RFC 8305 "Happy Eyeballs v2" connection racing
//!
//! The paper's client-side analysis (§3.2) leans on one protocol mechanism:
//! dual-stack hosts run Happy Eyeballs, which queries `AAAA` and `A` in
//! parallel, *prefers IPv6*, staggers connection attempts, and falls back to
//! IPv4 when IPv6 is broken or slow. Three of the paper's observations are
//! direct consequences:
//!
//! * observed IPv4 traffic at a verified dual-stack residence ⇒ the service
//!   is effectively IPv4-only;
//! * flow counts are noisier than byte counts because a race can open *both*
//!   an IPv6 and an IPv4 flow while all bytes go over the winner;
//! * ~1 in 10 fully IPv6-capable page loads still uses IPv4 because IPv4
//!   occasionally wins the race (§4.2's "Browser Used IPv4" row).
//!
//! This crate implements the algorithm over the [`netsim`] event queue and
//! [`dnssim`] resolver: query both families (simulated per-family DNS
//! latency), apply the **resolution delay** (default 50 ms) when `A` returns
//! before `AAAA`, sort candidates by family interleaving with IPv6 first,
//! start attempts separated by the **connection attempt delay** (default
//! 250 ms, next attempt starts early if the previous one fails), and report
//! every attempt that was started — the flow-level ground truth that
//! `trafficgen` turns into flow records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dnssim::{AddrsOutcome, Name, ResolveAddrs, ResolverConfig};
use iputil::Family;
use netsim::{ConnectOutcome, EventQueue, Network, TcpConnector, Time, MILLIS};
use rand::Rng;
use std::net::IpAddr;

/// Tunables of the Happy Eyeballs algorithm (RFC 8305 §8 names).
#[derive(Debug, Clone, Copy)]
pub struct HappyEyeballsConfig {
    /// Simulated latency of the `AAAA` query (stub resolver → answer).
    pub dns_latency_v6: Time,
    /// Simulated latency of the `A` query.
    pub dns_latency_v4: Time,
    /// Resolution Delay: how long to wait for `AAAA` after `A` arrives
    /// (RFC 8305 recommends 50 ms).
    pub resolution_delay: Time,
    /// Connection Attempt Delay between staggered attempts
    /// (RFC 8305 recommends 250 ms).
    pub connection_attempt_delay: Time,
    /// Preferred address family (IPv6 per the RFC).
    pub preferred: Family,
    /// TCP model used for each attempt.
    pub connector: TcpConnector,
    /// Resolver timing/retry parameters. Shared with the fault plane so a
    /// fault schedule and the race agree on how long a timed-out query
    /// takes to come back (historically a constant buried in this crate).
    pub resolver: ResolverConfig,
}

impl Default for HappyEyeballsConfig {
    fn default() -> Self {
        HappyEyeballsConfig {
            dns_latency_v6: 20 * MILLIS,
            dns_latency_v4: 20 * MILLIS,
            resolution_delay: 50 * MILLIS,
            connection_attempt_delay: 250 * MILLIS,
            preferred: Family::V6,
            connector: TcpConnector::default(),
            resolver: ResolverConfig::default(),
        }
    }
}

/// One connection attempt started during the race. Every attempt corresponds
/// to an observable flow at the residence router, whether or not it won.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// Destination address.
    pub addr: IpAddr,
    /// Address family (derived from `addr`, cached for convenience).
    pub family: Family,
    /// Absolute time the SYN was first sent.
    pub started_at: Time,
    /// Outcome of this individual attempt.
    pub outcome: ConnectOutcome,
}

/// Why a race produced no connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceError {
    /// Neither family resolved to any address.
    ResolutionFailed {
        /// Outcome of the `AAAA` query.
        v6: AddrsOutcome,
        /// Outcome of the `A` query.
        v4: AddrsOutcome,
    },
    /// Addresses resolved but every attempt failed.
    AllAttemptsFailed,
}

/// Complete report of one Happy Eyeballs race.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The winning attempt, if any.
    pub winner: Option<Attempt>,
    /// Every attempt that was started, in start order.
    pub attempts: Vec<Attempt>,
    /// `AAAA` resolution outcome (chainless; the race never reads CNAME
    /// chains, so the resolver's allocation-free fast path is used).
    pub v6_resolution: AddrsOutcome,
    /// `A` resolution outcome.
    pub v4_resolution: AddrsOutcome,
    /// Error when no connection was established.
    pub error: Option<RaceError>,
}

impl RaceReport {
    /// Family of the winning connection.
    pub fn winning_family(&self) -> Option<Family> {
        self.winner.map(|w| w.family)
    }

    /// True when the race connected to anything.
    pub fn connected(&self) -> bool {
        self.winner.is_some()
    }

    /// Attempts of a given family (each one is a flow the router records).
    pub fn attempts_of(&self, family: Family) -> usize {
        self.attempts.iter().filter(|a| a.family == family).count()
    }
}

/// Internal event type driving one race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    DnsAnswer(Family),
    ResolutionDelayExpired,
    StartNextAttempt,
    AttemptResolved(usize),
}

/// The Happy Eyeballs engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct HappyEyeballs {
    /// Algorithm parameters.
    pub config: HappyEyeballsConfig,
}

impl HappyEyeballs {
    /// Create an engine with the given configuration.
    pub fn new(config: HappyEyeballsConfig) -> HappyEyeballs {
        HappyEyeballs { config }
    }

    /// Race a connection to `name` starting at absolute time `start`.
    ///
    /// Deterministic given the RNG state. The per-attempt TCP outcomes are
    /// drawn through [`TcpConnector`]; DNS outcomes come from any
    /// [`ResolveAddrs`] implementation with fixed per-family latency — the
    /// plain stub resolver, or a DNS64 layer whose synthesized `AAAA`
    /// answers make an IPv4-only service race (and win) over IPv6 through a
    /// NAT64 gateway.
    pub fn connect<R: Rng + ?Sized, S: ResolveAddrs>(
        &self,
        net: &Network,
        resolver: &S,
        rng: &mut R,
        name: &Name,
        start: Time,
    ) -> RaceReport {
        let cfg = &self.config;
        // Chainless resolution: one Vec<Name> allocation avoided per query,
        // and the race runs once per (day, service) pair in trafficgen and
        // once per page load in crawlsim. The timed path lets the resolver
        // decide how long each answer takes: a timeout "arrives" after
        // `cfg.resolver.timeout`, and failure-aware wrappers (the fault
        // plane's retrying resolver) fold retry and backoff time in here.
        let (v6_res, v6_latency) =
            resolver.resolve_addrs_timed(name, Family::V6, cfg.dns_latency_v6, &cfg.resolver);
        let (v4_res, v4_latency) =
            resolver.resolve_addrs_timed(name, Family::V4, cfg.dns_latency_v4, &cfg.resolver);

        let mut queue: EventQueue<Event> = EventQueue::new();
        queue.schedule_at(start + v6_latency, Event::DnsAnswer(Family::V6));
        queue.schedule_at(start + v4_latency, Event::DnsAnswer(Family::V4));

        let mut v6_addrs: Vec<IpAddr> = Vec::new();
        let mut v4_addrs: Vec<IpAddr> = Vec::new();
        let mut v6_answered = false;
        let mut v4_answered = false;
        let mut candidates: Vec<IpAddr> = Vec::new();
        let mut next_candidate = 0usize;
        let mut attempts_started = false;
        let mut resolution_timer_set = false;
        let mut attempts: Vec<Attempt> = Vec::new();
        let mut pending_attempts = 0usize;
        let mut winner: Option<Attempt> = None;

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::DnsAnswer(family) => {
                    let (res, addrs, answered) = match family {
                        Family::V6 => (&v6_res, &mut v6_addrs, &mut v6_answered),
                        Family::V4 => (&v4_res, &mut v4_addrs, &mut v4_answered),
                    };
                    *answered = true;
                    addrs.extend_from_slice(res.addresses());

                    let preferred_answered = match cfg.preferred {
                        Family::V6 => v6_answered,
                        Family::V4 => v4_answered,
                    };
                    if winner.is_none() && !attempts_started {
                        if preferred_answered || (v6_answered && v4_answered) {
                            // Either the preferred family answered, or both
                            // did: start (or re-sort) immediately.
                            candidates = interleave(&v6_addrs, &v4_addrs, cfg.preferred);
                            if !candidates.is_empty() {
                                attempts_started = true;
                                queue.schedule_at(now, Event::StartNextAttempt);
                            }
                        } else if !resolution_timer_set {
                            // Non-preferred family answered first: give the
                            // preferred family the resolution delay.
                            resolution_timer_set = true;
                            queue.schedule_in(cfg.resolution_delay, Event::ResolutionDelayExpired);
                        }
                    } else if winner.is_none() && attempts_started {
                        // Late answer while attempts are running: splice the
                        // new addresses into the not-yet-tried tail.
                        let tried: Vec<IpAddr> = candidates[..next_candidate].to_vec();
                        let rem_v6: Vec<IpAddr> = v6_addrs
                            .iter()
                            .filter(|a| !tried.contains(a))
                            .cloned()
                            .collect();
                        let rem_v4: Vec<IpAddr> = v4_addrs
                            .iter()
                            .filter(|a| !tried.contains(a))
                            .cloned()
                            .collect();
                        let tail = interleave(&rem_v6, &rem_v4, cfg.preferred);
                        candidates.truncate(next_candidate);
                        candidates.extend(tail);
                    }
                }
                Event::ResolutionDelayExpired => {
                    if winner.is_none() && !attempts_started {
                        candidates = interleave(&v6_addrs, &v4_addrs, cfg.preferred);
                        if !candidates.is_empty() {
                            attempts_started = true;
                            queue.schedule_at(now, Event::StartNextAttempt);
                        }
                    }
                }
                Event::StartNextAttempt => {
                    if winner.is_some() || next_candidate >= candidates.len() {
                        continue;
                    }
                    let addr = candidates[next_candidate];
                    next_candidate += 1;
                    let outcome = cfg.connector.connect(net, rng, addr, now);
                    let idx = attempts.len();
                    attempts.push(Attempt {
                        addr,
                        family: Family::of(addr),
                        started_at: now,
                        outcome,
                    });
                    pending_attempts += 1;
                    queue.schedule_at(outcome.resolved_at(), Event::AttemptResolved(idx));
                    if next_candidate < candidates.len() {
                        // Next attempt after the stagger delay, or earlier if
                        // this one fails first (handled in AttemptResolved).
                        queue.schedule_in(cfg.connection_attempt_delay, Event::StartNextAttempt);
                    }
                }
                Event::AttemptResolved(idx) => {
                    pending_attempts -= 1;
                    let attempt = attempts[idx];
                    match attempt.outcome {
                        ConnectOutcome::Connected { .. } => {
                            if winner.is_none() {
                                winner = Some(attempt);
                                // Stop starting new attempts; drain the rest.
                            }
                        }
                        ConnectOutcome::Failed { .. } => {
                            if winner.is_none() && next_candidate < candidates.len() {
                                // Fast fallback: a failure unlocks the next
                                // candidate immediately.
                                queue.schedule_at(now, Event::StartNextAttempt);
                            }
                        }
                    }
                }
            }
            // Early exit: winner decided and nothing left in flight that we
            // care about (remaining events are stale timers).
            if winner.is_some() && pending_attempts == 0 {
                break;
            }
        }

        obs::counter_add("he.races", 1);
        match winner.map(|w| w.family) {
            Some(Family::V6) => obs::counter_add("he.v6_wins", 1),
            Some(Family::V4) => obs::counter_add("he.v4_wins", 1),
            None => obs::counter_add("he.failures", 1),
        }

        let error = if winner.is_some() {
            None
        } else if attempts.is_empty() {
            Some(RaceError::ResolutionFailed {
                v6: v6_res.clone(),
                v4: v4_res.clone(),
            })
        } else {
            Some(RaceError::AllAttemptsFailed)
        };

        RaceReport {
            winner,
            attempts,
            v6_resolution: v6_res,
            v4_resolution: v4_res,
            error,
        }
    }
}

/// RFC 8305 §4 address sorting, simplified: interleave families starting
/// with the preferred one ("First Address Family Count" = 1).
fn interleave(v6: &[IpAddr], v4: &[IpAddr], preferred: Family) -> Vec<IpAddr> {
    let (first, second): (&[IpAddr], &[IpAddr]) = match preferred {
        Family::V6 => (v6, v4),
        Family::V4 => (v4, v6),
    };
    let mut out = Vec::with_capacity(first.len() + second.len());
    let mut i = 0;
    while i < first.len() || i < second.len() {
        if i < first.len() {
            out.push(first[i]);
        }
        if i < second.len() {
            out.push(second[i]);
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::{Resolver, ZoneDb};
    use netsim::{PathProfile, SECONDS};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn zone() -> ZoneDb {
        let mut db = ZoneDb::new();
        db.add_a("dual.test".into(), "192.0.2.1".parse().unwrap());
        db.add_aaaa("dual.test".into(), "2001:db8::1".parse().unwrap());
        db.add_a("v4only.test".into(), "192.0.2.2".parse().unwrap());
        db.add_aaaa("v6only.test".into(), "2001:db8::2".parse().unwrap());
        db
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn prefers_ipv6_on_healthy_dual_stack() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let net = Network::dual_stack_ms(30);
        let he = HappyEyeballs::default();
        let report = he.connect(&net, &resolver, &mut rng(), &"dual.test".into(), 0);
        assert_eq!(report.winning_family(), Some(Family::V6));
        // IPv6 connects in 30 ms < 250 ms stagger: no IPv4 flow at all.
        assert_eq!(report.attempts.len(), 1);
    }

    #[test]
    fn falls_back_to_v4_when_v6_unreachable() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let mut net = Network::dual_stack_ms(30);
        net.set_family_default(Family::V6, PathProfile::unreachable());
        let he = HappyEyeballs::default();
        let report = he.connect(&net, &resolver, &mut rng(), &"dual.test".into(), 0);
        assert_eq!(report.winning_family(), Some(Family::V4));
        // Both families were attempted: two flows recorded.
        assert_eq!(report.attempts_of(Family::V6), 1);
        assert_eq!(report.attempts_of(Family::V4), 1);
        // v4 starts one connection-attempt-delay after v6.
        let v4_attempt = report
            .attempts
            .iter()
            .find(|a| a.family == Family::V4)
            .unwrap();
        assert_eq!(
            v4_attempt.started_at,
            20 * MILLIS + 250 * MILLIS,
            "v4 attempt staggered by the connection attempt delay"
        );
    }

    #[test]
    fn slow_v6_loses_race_but_both_flows_recorded() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let mut net = Network::dual_stack_ms(20);
        // v6 path is up but very slow (600 ms RTT).
        net.set_family_default(
            Family::V6,
            PathProfile {
                rtt: 600 * MILLIS,
                loss: 0.0,
                reachable: true,
            },
        );
        let he = HappyEyeballs::default();
        let report = he.connect(&net, &resolver, &mut rng(), &"dual.test".into(), 0);
        // v6 starts at 20ms, completes 620ms. v4 starts at 270ms, completes 290ms.
        assert_eq!(report.winning_family(), Some(Family::V4));
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(report.attempts_of(Family::V6), 1);
    }

    #[test]
    fn v4_only_name_connects_after_resolution_delay() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let net = Network::dual_stack_ms(30);
        let he = HappyEyeballs::default();
        let report = he.connect(&net, &resolver, &mut rng(), &"v4only.test".into(), 0);
        assert_eq!(report.winning_family(), Some(Family::V4));
        assert!(!report.v6_resolution.is_success());
        // A answered at 20 ms; AAAA NoData also at 20 ms, so attempts start
        // as soon as both answers are in (no full resolution delay burned).
        assert_eq!(report.attempts[0].started_at, 20 * MILLIS);
    }

    #[test]
    fn v6_only_name_works() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let net = Network::dual_stack_ms(30);
        let he = HappyEyeballs::default();
        let report = he.connect(&net, &resolver, &mut rng(), &"v6only.test".into(), 0);
        assert_eq!(report.winning_family(), Some(Family::V6));
        assert_eq!(report.attempts.len(), 1);
    }

    #[test]
    fn resolution_delay_applies_when_aaaa_is_slow() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let net = Network::dual_stack_ms(10);
        let cfg = HappyEyeballsConfig {
            dns_latency_v4: 10 * MILLIS,
            dns_latency_v6: 300 * MILLIS, // AAAA very slow
            ..HappyEyeballsConfig::default()
        };
        let he = HappyEyeballs::new(cfg);
        let report = he.connect(&net, &resolver, &mut rng(), &"dual.test".into(), 0);
        // A at 10 ms; resolution delay 50 ms expires at 60 ms; v4 starts then
        // and wins at 70 ms, before AAAA even arrives.
        assert_eq!(report.winning_family(), Some(Family::V4));
        assert_eq!(report.attempts[0].started_at, 60 * MILLIS);
        assert_eq!(report.attempts.len(), 1);
    }

    #[test]
    fn nxdomain_both_families_is_resolution_failure() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let net = Network::dual_stack_ms(30);
        let he = HappyEyeballs::default();
        let report = he.connect(&net, &resolver, &mut rng(), &"missing.test".into(), 0);
        assert!(!report.connected());
        assert!(matches!(
            report.error,
            Some(RaceError::ResolutionFailed { .. })
        ));
        assert!(report.attempts.is_empty());
    }

    #[test]
    fn all_attempts_failed() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let mut net = Network::dual_stack_ms(30);
        net.set_family_default(Family::V4, PathProfile::unreachable());
        net.set_family_default(Family::V6, PathProfile::unreachable());
        let he = HappyEyeballs::default();
        let report = he.connect(&net, &resolver, &mut rng(), &"dual.test".into(), 0);
        assert!(!report.connected());
        assert_eq!(report.error, Some(RaceError::AllAttemptsFailed));
        assert_eq!(report.attempts.len(), 2);
    }

    #[test]
    fn failure_unlocks_next_attempt_early() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let mut net = Network::dual_stack_ms(30);
        // v6 fails fast-ish (single SYN, 1s timeout), v4 healthy.
        net.set_family_default(Family::V6, PathProfile::unreachable());
        let cfg = HappyEyeballsConfig {
            connector: TcpConnector {
                initial_rto: SECONDS,
                syn_retries: 0,
            },
            connection_attempt_delay: 5 * SECONDS, // longer than the failure
            ..HappyEyeballsConfig::default()
        };
        let he = HappyEyeballs::new(cfg);
        let report = he.connect(&net, &resolver, &mut rng(), &"dual.test".into(), 0);
        assert_eq!(report.winning_family(), Some(Family::V4));
        let v4 = report
            .attempts
            .iter()
            .find(|a| a.family == Family::V4)
            .unwrap();
        // v6 failed at 20ms + 1s; v4 must start then, not at 20ms + 5s.
        assert_eq!(v4.started_at, 20 * MILLIS + SECONDS);
    }

    /// AAAA times out, A answers: the time the timeout "arrives" now comes
    /// from `ResolverConfig::timeout` instead of a constant in this crate.
    #[test]
    fn dns_timeout_latency_comes_from_resolver_config() {
        struct V6TimesOut;
        impl ResolveAddrs for V6TimesOut {
            fn resolve_addrs(&self, _name: &Name, family: Family) -> AddrsOutcome {
                match family {
                    Family::V6 => AddrsOutcome::Timeout,
                    Family::V4 => AddrsOutcome::Answers(vec!["192.0.2.9".parse().unwrap()]),
                }
            }
        }
        let net = Network::dual_stack_ms(10);
        // Default config reproduces the historical 5 s constant: A arrives
        // at 20 ms, the preferred family is still pending, so attempts wait
        // out the 50 ms resolution delay and start at 70 ms.
        let he = HappyEyeballs::default();
        assert_eq!(he.config.resolver.timeout, 5_000 * MILLIS);
        let report = he.connect(&net, &V6TimesOut, &mut rng(), &"mixed.test".into(), 0);
        assert_eq!(report.winning_family(), Some(Family::V4));
        assert_eq!(report.attempts[0].started_at, 70 * MILLIS);
        // A 10 ms timeout makes the AAAA failure arrive *before* the A
        // answer: both families are answered at 20 ms and attempts start
        // immediately — the knob is honoured end-to-end.
        let short = HappyEyeballsConfig {
            resolver: ResolverConfig {
                timeout: 10 * MILLIS,
                ..ResolverConfig::default()
            },
            ..HappyEyeballsConfig::default()
        };
        let he_short = HappyEyeballs::new(short);
        let report = he_short.connect(&net, &V6TimesOut, &mut rng(), &"mixed.test".into(), 0);
        assert_eq!(report.winning_family(), Some(Family::V4));
        assert_eq!(report.attempts[0].started_at, 20 * MILLIS);
    }

    #[test]
    fn deterministic_given_seed() {
        let db = zone();
        let resolver = Resolver::new(&db);
        let mut net = Network::dual_stack_ms(30);
        net.set_family_default(
            Family::V6,
            PathProfile {
                rtt: 30 * MILLIS,
                loss: 0.3,
                reachable: true,
            },
        );
        let he = HappyEyeballs::default();
        let a = he.connect(&net, &resolver, &mut rng(), &"dual.test".into(), 0);
        let b = he.connect(&net, &resolver, &mut rng(), &"dual.test".into(), 0);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    fn interleave_orders() {
        let v6: Vec<IpAddr> = vec![
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        ];
        let v4: Vec<IpAddr> = vec!["192.0.2.1".parse().unwrap()];
        let order = interleave(&v6, &v4, Family::V6);
        assert_eq!(Family::of(order[0]), Family::V6);
        assert_eq!(Family::of(order[1]), Family::V4);
        assert_eq!(Family::of(order[2]), Family::V6);
        let order4 = interleave(&v6, &v4, Family::V4);
        assert_eq!(Family::of(order4[0]), Family::V4);
    }
}
