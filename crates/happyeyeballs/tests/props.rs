//! Property tests for Happy Eyeballs: liveness (connects when anything is
//! reachable), family soundness, and timing monotonicity.

use dnssim::{Name, Resolver, ZoneDb};
use happyeyeballs::{HappyEyeballs, HappyEyeballsConfig};
use iputil::Family;
use netsim::{Network, PathProfile, MILLIS};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn zone(has_a: bool, has_aaaa: bool) -> ZoneDb {
    let mut db = ZoneDb::new();
    if has_a {
        db.add_a("svc.test".into(), "192.0.2.1".parse().unwrap());
    }
    if has_aaaa {
        db.add_aaaa("svc.test".into(), "2001:db8::1".parse().unwrap());
    }
    db
}

proptest! {
    /// If at least one family has records and a reachable path, the race
    /// connects — and only ever to a family that actually has records.
    #[test]
    fn liveness_and_soundness(
        has_a in any::<bool>(),
        has_aaaa in any::<bool>(),
        v4_up in any::<bool>(),
        v6_up in any::<bool>(),
        rtt4 in 5u64..200,
        rtt6 in 5u64..200,
        seed in any::<u64>(),
    ) {
        let db = zone(has_a, has_aaaa);
        let resolver = Resolver::new(&db);
        let mut net = Network::new(
            if v4_up { PathProfile::healthy_ms(rtt4) } else { PathProfile::unreachable() },
            if v6_up { PathProfile::healthy_ms(rtt6) } else { PathProfile::unreachable() },
        );
        net.set_family_default(Family::V4, if v4_up { PathProfile::healthy_ms(rtt4) } else { PathProfile::unreachable() });
        net.set_family_default(Family::V6, if v6_up { PathProfile::healthy_ms(rtt6) } else { PathProfile::unreachable() });
        let he = HappyEyeballs::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let report = he.connect(&net, &resolver, &mut rng, &Name::new("svc.test"), 0);

        let can_v4 = has_a && v4_up;
        let can_v6 = has_aaaa && v6_up;
        if can_v4 || can_v6 {
            prop_assert!(report.connected(), "must connect when a path exists");
            let fam = report.winning_family().unwrap();
            match fam {
                Family::V4 => prop_assert!(can_v4),
                Family::V6 => prop_assert!(can_v6),
            }
        } else {
            prop_assert!(!report.connected());
        }
        // Attempts only target families that resolved.
        for a in &report.attempts {
            match a.family {
                Family::V4 => prop_assert!(has_a),
                Family::V6 => prop_assert!(has_aaaa),
            }
        }
        // The winner appears in the attempt list.
        if let Some(w) = report.winner {
            prop_assert!(report.attempts.iter().any(|a| a == &w));
        }
    }

    /// IPv6 preference: on a healthy dual-stack with comparable RTTs, IPv6
    /// wins — regardless of seed (there is no loss to race on).
    #[test]
    fn v6_preference_is_deterministic(rtt in 5u64..100, seed in any::<u64>()) {
        let db = zone(true, true);
        let resolver = Resolver::new(&db);
        let net = Network::dual_stack_ms(rtt);
        let he = HappyEyeballs::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let report = he.connect(&net, &resolver, &mut rng, &Name::new("svc.test"), 0);
        prop_assert_eq!(report.winning_family(), Some(Family::V6));
    }

    /// Attempt start times respect the stagger: second attempt never starts
    /// before the first, and not before the connection attempt delay unless
    /// the first attempt failed earlier.
    #[test]
    fn stagger_ordering(seed in any::<u64>(), delay_ms in 50u64..500) {
        let db = zone(true, true);
        let resolver = Resolver::new(&db);
        let mut net = Network::dual_stack_ms(10);
        // Slow v6 so a second attempt actually launches.
        net.set_family_default(
            Family::V6,
            PathProfile { rtt: 2_000 * MILLIS, loss: 0.0, reachable: true },
        );
        let cfg = HappyEyeballsConfig {
            connection_attempt_delay: delay_ms * MILLIS,
            ..HappyEyeballsConfig::default()
        };
        let he = HappyEyeballs::new(cfg);
        let mut rng = SmallRng::seed_from_u64(seed);
        let report = he.connect(&net, &resolver, &mut rng, &Name::new("svc.test"), 0);
        prop_assert!(report.attempts.len() >= 2);
        let t0 = report.attempts[0].started_at;
        let t1 = report.attempts[1].started_at;
        prop_assert!(t1 >= t0);
        prop_assert!(t1 >= t0 + delay_ms * MILLIS || t1 >= t0 + 10 * MILLIS);
    }
}
