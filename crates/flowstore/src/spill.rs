//! [`SpillSink`]: a [`FlowSink`] that seals sorted immutable day-parts.
//!
//! The producer contract (records of one day arrive contiguously, days
//! ascending) means a day boundary in the stream is a seal point: the
//! buffered rows become one immutable part file and the buffer restarts.
//! Peak memory is therefore one in-flight day of one stream, regardless
//! of `--days`.
//!
//! `FlowSink::accept` cannot return errors, so the first I/O failure is
//! latched and surfaced by [`SpillSink::finish`]; subsequent records are
//! dropped (the run is already lost — determinism of the error beats
//! partial output).

use crate::error::{Error, Result};
use crate::part::{part_file_name, write_part, PartMeta};
use flowmon::{day_of, FlowRecord, FlowSink};
use std::path::PathBuf;

/// Spills a record stream into day-parts under a directory.
#[derive(Debug)]
pub struct SpillSink {
    dir: PathBuf,
    stream: u64,
    buf: Vec<FlowRecord>,
    cur_day: Option<u64>,
    /// Next sequence number per day — a day revisited after a seal (a
    /// producer-contract violation, but one that must not lose data) gets
    /// a fresh part file instead of overwriting the earlier one.
    next_seq: std::collections::BTreeMap<u64, u32>,
    sealed: Vec<PartMeta>,
    error: Option<Error>,
}

impl SpillSink {
    /// Create a spill sink writing parts for `stream` under `dir`
    /// (created if missing).
    pub fn new(dir: impl Into<PathBuf>, stream: u64) -> Result<SpillSink> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| Error::io(&dir, e))?;
        Ok(SpillSink {
            dir,
            stream,
            buf: Vec::new(),
            cur_day: None,
            next_seq: std::collections::BTreeMap::new(),
            sealed: Vec::new(),
            error: None,
        })
    }

    fn seal(&mut self) {
        let Some(day) = self.cur_day else {
            return;
        };
        if self.error.is_some() {
            self.buf.clear();
            return;
        }
        let seq_slot = self.next_seq.entry(day).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        let path = self.dir.join(part_file_name(self.stream, day, seq));
        match write_part(&path, self.stream, day, seq, &self.buf) {
            Ok(meta) => self.sealed.push(meta),
            Err(e) => self.error = Some(e),
        }
        self.buf.clear();
    }

    /// Seal the in-flight day (if any) and return every part written, or
    /// the first error the sink hit.
    pub fn finish(mut self) -> Result<Vec<PartMeta>> {
        self.seal();
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(std::mem::take(&mut self.sealed)),
        }
    }

    /// Parts sealed so far (excludes the in-flight buffer).
    #[must_use]
    pub fn sealed(&self) -> &[PartMeta] {
        &self.sealed
    }
}

impl FlowSink for SpillSink {
    fn accept(&mut self, record: &FlowRecord) {
        let day = day_of(record.start);
        match self.cur_day {
            Some(d) if d == day => {}
            Some(_) => {
                self.seal();
                self.cur_day = Some(day);
            }
            None => self.cur_day = Some(day),
        }
        self.buf.push(*record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PartSet;
    use flowmon::{CollectSink, FlowKey, Scope, DAY};

    fn rec(day: u64, i: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::udp(
                "10.9.9.9".parse().unwrap(),
                (1000 + i % 100) as u16,
                "2001:db8::77".parse().unwrap(),
                53,
            ),
            start: day * DAY + i * 11,
            end: day * DAY + i * 11 + 3,
            bytes_orig: i,
            bytes_reply: 2 * i,
            packets_orig: 1,
            packets_reply: 1,
            scope: Scope::External,
        }
    }

    #[test]
    fn seals_one_part_per_day_and_replays_exactly() {
        let dir = std::env::temp_dir().join("flowstore-spill-test");
        std::fs::remove_dir_all(&dir).ok();
        let mut records = Vec::new();
        for day in 0..3u64 {
            for i in 0..50 {
                records.push(rec(day, i));
            }
        }
        let mut sink = SpillSink::new(&dir, 0).unwrap();
        sink.accept_batch(&records);
        let parts = sink.finish().unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.rows == 50));

        let mut collect = CollectSink::new();
        PartSet::from_metas(parts)
            .replay_into(&mut collect)
            .unwrap();
        assert_eq!(collect.into_records(), records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
