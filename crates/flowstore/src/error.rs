//! Error type for the flow store. Everything fallible returns
//! [`Result`]; the crate contains no `unwrap`/`expect` outside tests.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Failure while writing, reading, or verifying a part.
#[derive(Debug)]
pub enum Error {
    /// Underlying filesystem failure, tagged with the path involved.
    Io {
        /// Path the operation was touching.
        path: std::path::PathBuf,
        /// The originating I/O error.
        source: std::io::Error,
    },
    /// Structural corruption: bad magic, truncated footer, codec overrun,
    /// or a content digest that does not match the footer.
    Corrupt(String),
}

impl Error {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        Error::Corrupt(msg.into())
    }

    pub(crate) fn io(path: impl Into<std::path::PathBuf>, source: std::io::Error) -> Self {
        Error::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => write!(f, "io error at {}: {source}", path.display()),
            Error::Corrupt(msg) => write!(f, "corrupt part: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            Error::Corrupt(_) => None,
        }
    }
}
