//! The on-disk part format: one sorted immutable day-part per file.
//!
//! ```text
//! +----------------------+  offset 0
//! | magic  "FSPART1\0"   |  8 bytes
//! +----------------------+  column region (offsets in the footer are
//! | column 0 bytes       |  relative to the start of this region)
//! | column 1 bytes       |
//! | ...                  |
//! | column 12 bytes      |
//! +----------------------+
//! | footer               |  fixed-width little-endian:
//! |   stream u64         |    producer stream id
//! |   day    u64         |    day index (start / flowmon::DAY)
//! |   seq    u32         |    sequence within (stream, day)
//! |   rows   u64         |    row count
//! |   digest u64         |    FNV-1a64 over the column region
//! |   ncols  u32         |    = 13
//! |   per column:        |    offset u64 · len u64 · raw_bytes u64
//! |     ... x 13         |    min u128 · max u128
//! +----------------------+
//! | footer_len u32       |  byte length of the footer
//! | tail magic "FSP1"    |  4 bytes
//! +----------------------+
//! ```
//!
//! One column per [`FlowRecord`] field; codecs per column:
//!
//! | # | column        | codec                       | raw width |
//! |---|---------------|-----------------------------|-----------|
//! | 0 | proto         | run-length                  | 1         |
//! | 1 | src           | family RLE + u128 dictionary| 17        |
//! | 2 | dst           | family RLE + u128 dictionary| 17        |
//! | 3 | sport         | zigzag delta varint         | 2         |
//! | 4 | dport         | zigzag delta varint         | 2         |
//! | 5 | icmp          | packed u64, run-length      | 5         |
//! | 6 | start         | delta-of-delta varint       | 8         |
//! | 7 | end           | varint of `end - start`     | 8         |
//! | 8 | bytes_orig    | varint                      | 8         |
//! | 9 | bytes_reply   | varint                      | 8         |
//! | 10| packets_orig  | varint                      | 8         |
//! | 11| packets_reply | varint                      | 8         |
//! | 12| scope         | run-length                  | 1         |
//!
//! **Determinism contract.** A sealed part's bytes are a pure function of
//! `(stream, day, seq, rows)`: codecs use first-appearance dictionaries and
//! wrapping deltas, never ambient state, so the same record slice always
//! produces the same file and decoding always reproduces the exact records.
//! The footer digest is verified on every read.

use crate::codec::{
    decode_delta, decode_delta2, decode_dict, decode_rle, decode_varint, encode_delta,
    encode_delta2, encode_dict, encode_rle, encode_varint, get_uvarint, put_uvarint,
};
use crate::digest::fnv1a64;
use crate::error::{Error, Result};
use flowmon::{FlowKey, FlowRecord, IcmpMeta, Proto, Scope};
use std::net::IpAddr;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"FSPART1\0";
const TAIL_MAGIC: &[u8; 4] = b"FSP1";

/// Number of columns in a part (one per [`FlowRecord`] field).
pub const COLUMNS: usize = 13;

/// Column names, in on-disk order. Used for telemetry and debugging.
pub const COLUMN_NAMES: [&str; COLUMNS] = [
    "proto",
    "src",
    "dst",
    "sport",
    "dport",
    "icmp",
    "start",
    "end",
    "bytes_orig",
    "bytes_reply",
    "packets_orig",
    "packets_reply",
    "scope",
];

/// Natural (uncompressed) width in bytes of each column's values.
const RAW_WIDTHS: [u64; COLUMNS] = [1, 17, 17, 2, 2, 5, 8, 8, 8, 8, 8, 8, 1];

/// Per-column counter names for compressed bytes, in column order.
/// Static so `obs` counters avoid per-seal string allocation.
pub(crate) const COL_BYTES_COUNTERS: [&str; COLUMNS] = [
    "flowstore.col.proto.bytes",
    "flowstore.col.src.bytes",
    "flowstore.col.dst.bytes",
    "flowstore.col.sport.bytes",
    "flowstore.col.dport.bytes",
    "flowstore.col.icmp.bytes",
    "flowstore.col.start.bytes",
    "flowstore.col.end.bytes",
    "flowstore.col.bytes_orig.bytes",
    "flowstore.col.bytes_reply.bytes",
    "flowstore.col.packets_orig.bytes",
    "flowstore.col.packets_reply.bytes",
    "flowstore.col.scope.bytes",
];

/// Per-column counter names for raw (pre-compression) bytes.
pub(crate) const COL_RAW_COUNTERS: [&str; COLUMNS] = [
    "flowstore.col.proto.raw",
    "flowstore.col.src.raw",
    "flowstore.col.dst.raw",
    "flowstore.col.sport.raw",
    "flowstore.col.dport.raw",
    "flowstore.col.icmp.raw",
    "flowstore.col.start.raw",
    "flowstore.col.end.raw",
    "flowstore.col.bytes_orig.raw",
    "flowstore.col.bytes_reply.raw",
    "flowstore.col.packets_orig.raw",
    "flowstore.col.packets_reply.raw",
    "flowstore.col.scope.raw",
];

/// Footer metadata for one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Byte offset of the column within the column region.
    pub offset: u64,
    /// Encoded byte length.
    pub len: u64,
    /// Uncompressed size (`rows * natural width`).
    pub raw_bytes: u64,
    /// Minimum semantic value (integer mapping; addresses as raw bits).
    /// Zero when the part is empty.
    pub min: u128,
    /// Maximum semantic value. Zero when the part is empty.
    pub max: u128,
}

/// The decoded footer of a part file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footer {
    /// Producer stream id (shard or residence group).
    pub stream: u64,
    /// Day index of every row in the part.
    pub day: u64,
    /// Sequence number within `(stream, day)`.
    pub seq: u32,
    /// Row count.
    pub rows: u64,
    /// FNV-1a64 digest over the column region.
    pub digest: u64,
    /// Per-column metadata, in [`COLUMN_NAMES`] order.
    pub columns: Vec<ColumnMeta>,
}

/// Identity and summary of a sealed part on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartMeta {
    /// Path of the part file.
    pub path: PathBuf,
    /// Producer stream id.
    pub stream: u64,
    /// Day index.
    pub day: u64,
    /// Sequence within `(stream, day)`.
    pub seq: u32,
    /// Row count.
    pub rows: u64,
    /// Total encoded column bytes.
    pub stored_bytes: u64,
    /// Total uncompressed column bytes.
    pub raw_bytes: u64,
}

impl PartMeta {
    /// Canonical replay order: `(day, stream, seq)`. Day-major replay
    /// matches the day-major emission order of every producer, so merged
    /// replay reproduces the original stream byte-identically.
    pub fn canonical_key(&self) -> (u64, u64, u32) {
        (self.day, self.stream, self.seq)
    }
}

/// Canonical file name for a part: `part-s{stream}-d{day}-q{seq}.fsp`.
pub fn part_file_name(stream: u64, day: u64, seq: u32) -> String {
    format!("part-s{stream:08}-d{day:08}-q{seq:04}.fsp")
}

/// Parse a [`part_file_name`]; `None` for foreign files.
pub fn parse_part_file_name(name: &str) -> Option<(u64, u64, u32)> {
    let rest = name.strip_prefix("part-s")?.strip_suffix(".fsp")?;
    let (stream, rest) = rest.split_once("-d")?;
    let (day, seq) = rest.split_once("-q")?;
    Some((stream.parse().ok()?, day.parse().ok()?, seq.parse().ok()?))
}

fn proto_code(p: Proto) -> u64 {
    match p {
        Proto::Tcp => 0,
        Proto::Udp => 1,
        Proto::Icmp => 2,
    }
}

fn proto_from(code: u64) -> Result<Proto> {
    match code {
        0 => Ok(Proto::Tcp),
        1 => Ok(Proto::Udp),
        2 => Ok(Proto::Icmp),
        _ => Err(Error::corrupt("unknown proto code")),
    }
}

fn scope_code(s: Scope) -> u64 {
    match s {
        Scope::External => 0,
        Scope::Internal => 1,
    }
}

fn scope_from(code: u64) -> Result<Scope> {
    match code {
        0 => Ok(Scope::External),
        1 => Ok(Scope::Internal),
        _ => Err(Error::corrupt("unknown scope code")),
    }
}

/// `(family_tag, bits)` for an address: v4 → `(0, u32 bits)`, v6 → `(1, u128 bits)`.
fn addr_bits(a: IpAddr) -> (u64, u128) {
    match a {
        IpAddr::V4(v4) => (0, u128::from(u32::from(v4))),
        IpAddr::V6(v6) => (1, u128::from(v6)),
    }
}

fn addr_from(tag: u64, bits: u128) -> Result<IpAddr> {
    match tag {
        0 => {
            let v = u32::try_from(bits).map_err(|_| Error::corrupt("v4 address overflow"))?;
            Ok(IpAddr::V4(std::net::Ipv4Addr::from(v)))
        }
        1 => Ok(IpAddr::V6(std::net::Ipv6Addr::from(bits))),
        _ => Err(Error::corrupt("unknown address family tag")),
    }
}

fn icmp_pack(m: Option<IcmpMeta>) -> u64 {
    match m {
        None => 0,
        Some(m) => {
            (1u64 << 32)
                | (u64::from(m.icmp_type) << 24)
                | (u64::from(m.icmp_code) << 16)
                | u64::from(m.icmp_id)
        }
    }
}

fn icmp_unpack(v: u64) -> Result<Option<IcmpMeta>> {
    if v == 0 {
        return Ok(None);
    }
    if v >> 32 != 1 {
        return Err(Error::corrupt("bad icmp packing"));
    }
    Ok(Some(IcmpMeta {
        icmp_type: ((v >> 24) & 0xff) as u8,
        icmp_code: ((v >> 16) & 0xff) as u8,
        icmp_id: (v & 0xffff) as u16,
    }))
}

/// Address column: family tags (run-length, length-prefixed) followed by a
/// first-appearance dictionary over the address bits.
fn encode_addr(tags: &[u64], bits: &[u128]) -> Vec<u8> {
    let rle = encode_rle(tags);
    let mut out = Vec::with_capacity(rle.len() + 8);
    put_uvarint(&mut out, rle.len() as u64);
    out.extend_from_slice(&rle);
    out.extend_from_slice(&encode_dict(bits));
    out
}

fn decode_addr(buf: &[u8], rows: usize) -> Result<(Vec<u64>, Vec<u128>)> {
    let mut pos = 0usize;
    let rle_len = get_uvarint(buf, &mut pos)? as usize;
    let rle_end = pos
        .checked_add(rle_len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| Error::corrupt("address tag length out of range"))?;
    let tags = decode_rle(&buf[pos..rle_end], rows)?;
    let bits = decode_dict(&buf[rle_end..], rows)?;
    Ok((tags, bits))
}

fn minmax_u64(values: &[u64]) -> (u128, u128) {
    let min = values.iter().min().copied().unwrap_or(0);
    let max = values.iter().max().copied().unwrap_or(0);
    (u128::from(min), u128::from(max))
}

fn minmax_u128(values: &[u128]) -> (u128, u128) {
    let min = values.iter().min().copied().unwrap_or(0);
    let max = values.iter().max().copied().unwrap_or(0);
    (min, max)
}

/// Encode records into the column region plus per-column metadata.
/// Pure: bytes depend only on the record slice.
#[must_use]
pub fn encode_columns(records: &[FlowRecord]) -> (Vec<u8>, Vec<ColumnMeta>) {
    let rows = records.len();
    let mut proto = Vec::with_capacity(rows);
    let mut src_tag = Vec::with_capacity(rows);
    let mut src_bits = Vec::with_capacity(rows);
    let mut dst_tag = Vec::with_capacity(rows);
    let mut dst_bits = Vec::with_capacity(rows);
    let mut sport = Vec::with_capacity(rows);
    let mut dport = Vec::with_capacity(rows);
    let mut icmp = Vec::with_capacity(rows);
    let mut start = Vec::with_capacity(rows);
    let mut end_rel = Vec::with_capacity(rows);
    let mut end_abs = Vec::with_capacity(rows);
    let mut bytes_orig = Vec::with_capacity(rows);
    let mut bytes_reply = Vec::with_capacity(rows);
    let mut packets_orig = Vec::with_capacity(rows);
    let mut packets_reply = Vec::with_capacity(rows);
    let mut scope = Vec::with_capacity(rows);
    for r in records {
        proto.push(proto_code(r.key.proto));
        let (st, sb) = addr_bits(r.key.src);
        src_tag.push(st);
        src_bits.push(sb);
        let (dt, db) = addr_bits(r.key.dst);
        dst_tag.push(dt);
        dst_bits.push(db);
        sport.push(u64::from(r.key.sport));
        dport.push(u64::from(r.key.dport));
        icmp.push(icmp_pack(r.key.icmp));
        start.push(r.start);
        end_rel.push(r.end.wrapping_sub(r.start));
        end_abs.push(r.end);
        bytes_orig.push(r.bytes_orig);
        bytes_reply.push(r.bytes_reply);
        packets_orig.push(r.packets_orig);
        packets_reply.push(r.packets_reply);
        scope.push(scope_code(r.scope));
    }

    let blobs: [(Vec<u8>, (u128, u128)); COLUMNS] = [
        (encode_rle(&proto), minmax_u64(&proto)),
        (encode_addr(&src_tag, &src_bits), minmax_u128(&src_bits)),
        (encode_addr(&dst_tag, &dst_bits), minmax_u128(&dst_bits)),
        (encode_delta(&sport), minmax_u64(&sport)),
        (encode_delta(&dport), minmax_u64(&dport)),
        (encode_rle(&icmp), minmax_u64(&icmp)),
        (encode_delta2(&start), minmax_u64(&start)),
        (encode_varint(&end_rel), minmax_u64(&end_abs)),
        (encode_varint(&bytes_orig), minmax_u64(&bytes_orig)),
        (encode_varint(&bytes_reply), minmax_u64(&bytes_reply)),
        (encode_varint(&packets_orig), minmax_u64(&packets_orig)),
        (encode_varint(&packets_reply), minmax_u64(&packets_reply)),
        (encode_rle(&scope), minmax_u64(&scope)),
    ];

    let mut region = Vec::new();
    let mut metas = Vec::with_capacity(COLUMNS);
    for (i, (blob, (min, max))) in blobs.iter().enumerate() {
        metas.push(ColumnMeta {
            offset: region.len() as u64,
            len: blob.len() as u64,
            raw_bytes: RAW_WIDTHS[i] * rows as u64,
            min: *min,
            max: *max,
        });
        region.extend_from_slice(blob);
    }
    (region, metas)
}

/// Decode the column region back into records. Exact inverse of
/// [`encode_columns`] for any record slice.
pub fn decode_columns(region: &[u8], footer: &Footer) -> Result<Vec<FlowRecord>> {
    let rows = usize::try_from(footer.rows).map_err(|_| Error::corrupt("row count overflow"))?;
    if footer.columns.len() != COLUMNS {
        return Err(Error::corrupt("wrong column count"));
    }
    let col = |i: usize| -> Result<&[u8]> {
        let m = footer
            .columns
            .get(i)
            .ok_or_else(|| Error::corrupt("missing column meta"))?;
        let start = usize::try_from(m.offset).map_err(|_| Error::corrupt("offset overflow"))?;
        let len = usize::try_from(m.len).map_err(|_| Error::corrupt("length overflow"))?;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= region.len())
            .ok_or_else(|| Error::corrupt("column out of range"))?;
        Ok(&region[start..end])
    };

    let proto = decode_rle(col(0)?, rows)?;
    let (src_tag, src_bits) = decode_addr(col(1)?, rows)?;
    let (dst_tag, dst_bits) = decode_addr(col(2)?, rows)?;
    let sport = decode_delta(col(3)?, rows)?;
    let dport = decode_delta(col(4)?, rows)?;
    let icmp = decode_rle(col(5)?, rows)?;
    let start = decode_delta2(col(6)?, rows)?;
    let end_rel = decode_varint(col(7)?, rows)?;
    let bytes_orig = decode_varint(col(8)?, rows)?;
    let bytes_reply = decode_varint(col(9)?, rows)?;
    let packets_orig = decode_varint(col(10)?, rows)?;
    let packets_reply = decode_varint(col(11)?, rows)?;
    let scope = decode_rle(col(12)?, rows)?;

    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        let sport_v = u16::try_from(sport[i]).map_err(|_| Error::corrupt("sport out of range"))?;
        let dport_v = u16::try_from(dport[i]).map_err(|_| Error::corrupt("dport out of range"))?;
        out.push(FlowRecord {
            key: FlowKey {
                proto: proto_from(proto[i])?,
                src: addr_from(src_tag[i], src_bits[i])?,
                dst: addr_from(dst_tag[i], dst_bits[i])?,
                sport: sport_v,
                dport: dport_v,
                icmp: icmp_unpack(icmp[i])?,
            },
            start: start[i],
            end: start[i].wrapping_add(end_rel[i]),
            bytes_orig: bytes_orig[i],
            bytes_reply: bytes_reply[i],
            packets_orig: packets_orig[i],
            packets_reply: packets_reply[i],
            scope: scope_from(scope[i])?,
        });
    }
    Ok(out)
}

fn put_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128_le(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let end = pos
        .checked_add(N)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| Error::corrupt("footer truncated"))?;
    let mut arr = [0u8; N];
    arr.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(arr)
}

fn encode_footer(footer: &Footer) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + footer.columns.len() * 56);
    put_u64_le(&mut out, footer.stream);
    put_u64_le(&mut out, footer.day);
    put_u32_le(&mut out, footer.seq);
    put_u64_le(&mut out, footer.rows);
    put_u64_le(&mut out, footer.digest);
    put_u32_le(&mut out, footer.columns.len() as u32);
    for c in &footer.columns {
        put_u64_le(&mut out, c.offset);
        put_u64_le(&mut out, c.len);
        put_u64_le(&mut out, c.raw_bytes);
        put_u128_le(&mut out, c.min);
        put_u128_le(&mut out, c.max);
    }
    out
}

fn decode_footer(buf: &[u8]) -> Result<Footer> {
    let mut pos = 0usize;
    let stream = u64::from_le_bytes(take::<8>(buf, &mut pos)?);
    let day = u64::from_le_bytes(take::<8>(buf, &mut pos)?);
    let seq = u32::from_le_bytes(take::<4>(buf, &mut pos)?);
    let rows = u64::from_le_bytes(take::<8>(buf, &mut pos)?);
    let digest = u64::from_le_bytes(take::<8>(buf, &mut pos)?);
    let ncols = u32::from_le_bytes(take::<4>(buf, &mut pos)?) as usize;
    if ncols != COLUMNS {
        return Err(Error::corrupt("unexpected column count"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(ColumnMeta {
            offset: u64::from_le_bytes(take::<8>(buf, &mut pos)?),
            len: u64::from_le_bytes(take::<8>(buf, &mut pos)?),
            raw_bytes: u64::from_le_bytes(take::<8>(buf, &mut pos)?),
            min: u128::from_le_bytes(take::<16>(buf, &mut pos)?),
            max: u128::from_le_bytes(take::<16>(buf, &mut pos)?),
        });
    }
    if pos != buf.len() {
        return Err(Error::corrupt("trailing bytes after footer"));
    }
    Ok(Footer {
        stream,
        day,
        seq,
        rows,
        digest,
        columns,
    })
}

fn build_part(stream: u64, day: u64, seq: u32, records: &[FlowRecord]) -> (Vec<u8>, Footer) {
    let (region, columns) = encode_columns(records);
    let footer = Footer {
        stream,
        day,
        seq,
        rows: records.len() as u64,
        digest: fnv1a64(&region),
        columns,
    };
    let footer_bytes = encode_footer(&footer);
    let mut out = Vec::with_capacity(MAGIC.len() + region.len() + footer_bytes.len() + 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&region);
    out.extend_from_slice(&footer_bytes);
    put_u32_le(&mut out, footer_bytes.len() as u32);
    out.extend_from_slice(TAIL_MAGIC);
    (out, footer)
}

/// Serialize a complete part to bytes. Pure: output depends only on the
/// arguments, so two writers given the same rows produce identical files.
#[must_use]
pub fn part_bytes(stream: u64, day: u64, seq: u32, records: &[FlowRecord]) -> Vec<u8> {
    build_part(stream, day, seq, records).0
}

/// Write a sealed part file and record its telemetry (parts sealed, rows,
/// raw/stored bytes overall and per column — all layout-invariant:
/// they depend only on the spilled stream, not the thread schedule).
pub fn write_part(
    path: impl AsRef<Path>,
    stream: u64,
    day: u64,
    seq: u32,
    records: &[FlowRecord],
) -> Result<PartMeta> {
    let path = path.as_ref();
    let (out, footer) = build_part(stream, day, seq, records);
    std::fs::write(path, &out).map_err(|e| Error::io(path, e))?;

    let stored: u64 = footer.columns.iter().map(|c| c.len).sum();
    let raw: u64 = footer.columns.iter().map(|c| c.raw_bytes).sum();
    obs::counter_add("flowstore.parts_sealed", 1);
    obs::counter_add("flowstore.rows_sealed", footer.rows);
    obs::counter_add("flowstore.bytes_stored", stored);
    obs::counter_add("flowstore.bytes_raw", raw);
    for (i, c) in footer.columns.iter().enumerate() {
        obs::counter_add(COL_BYTES_COUNTERS[i], c.len);
        obs::counter_add(COL_RAW_COUNTERS[i], c.raw_bytes);
    }
    Ok(PartMeta {
        path: path.to_path_buf(),
        stream,
        day,
        seq,
        rows: footer.rows,
        stored_bytes: stored,
        raw_bytes: raw,
    })
}

/// Read and fully decode a part file, verifying magic and content digest.
pub fn read_part(path: impl AsRef<Path>) -> Result<(Footer, Vec<FlowRecord>)> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| Error::io(path, e))?;
    let min_len = MAGIC.len() + 4 + TAIL_MAGIC.len();
    if bytes.len() < min_len || &bytes[..MAGIC.len()] != MAGIC {
        return Err(Error::corrupt(format!("bad magic in {}", path.display())));
    }
    let tail_start = bytes.len() - TAIL_MAGIC.len();
    if &bytes[tail_start..] != TAIL_MAGIC {
        return Err(Error::corrupt(format!("bad tail in {}", path.display())));
    }
    let len_start = tail_start - 4;
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&bytes[len_start..tail_start]);
    let footer_len = u32::from_le_bytes(len_bytes) as usize;
    let footer_start = len_start
        .checked_sub(footer_len)
        .filter(|&s| s >= MAGIC.len())
        .ok_or_else(|| Error::corrupt("footer length out of range"))?;
    let footer = decode_footer(&bytes[footer_start..len_start])?;
    let region = &bytes[MAGIC.len()..footer_start];
    if fnv1a64(region) != footer.digest {
        return Err(Error::corrupt(format!(
            "content digest mismatch in {}",
            path.display()
        )));
    }
    let records = decode_columns(region, &footer)?;
    Ok((footer, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<FlowRecord> {
        let mut out = Vec::new();
        for i in 0..200u64 {
            out.push(FlowRecord {
                key: FlowKey::tcp(
                    IpAddr::V4(std::net::Ipv4Addr::from(0x0a00_0000 + i as u32 % 7)),
                    (40_000 + i % 100) as u16,
                    IpAddr::V6(std::net::Ipv6Addr::from(
                        0x2001_0db8 << 96 | u128::from(i % 5),
                    )),
                    443,
                ),
                start: 86_400_000_000 * 3 + i * 1000,
                end: 86_400_000_000 * 3 + i * 1000 + 77,
                bytes_orig: i * 31,
                bytes_reply: i * 997,
                packets_orig: i,
                packets_reply: i * 2,
                scope: if i % 9 == 0 {
                    Scope::Internal
                } else {
                    Scope::External
                },
            });
        }
        out[5].key = FlowKey::icmp(
            "10.0.0.1".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            IcmpMeta {
                icmp_type: 8,
                icmp_code: 0,
                icmp_id: 9,
            },
        );
        out
    }

    #[test]
    fn columns_round_trip() {
        let records = sample_records();
        let (region, columns) = encode_columns(&records);
        let footer = Footer {
            stream: 1,
            day: 3,
            seq: 0,
            rows: records.len() as u64,
            digest: fnv1a64(&region),
            columns,
        };
        assert_eq!(decode_columns(&region, &footer).unwrap(), records);
    }

    #[test]
    fn file_round_trip_and_digest_check() {
        let dir = std::env::temp_dir().join("flowstore-part-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(part_file_name(7, 3, 0));
        let records = sample_records();
        let meta = write_part(&path, 7, 3, 0, &records).unwrap();
        assert_eq!(meta.rows, records.len() as u64);
        let (footer, decoded) = read_part(&path).unwrap();
        assert_eq!(footer.stream, 7);
        assert_eq!(footer.day, 3);
        assert_eq!(decoded, records);

        // Flip a byte in the column region: the digest check must fail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len()] ^= 0xff;
        let bad = dir.join("corrupt.fsp");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(read_part(&bad).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_name_round_trips() {
        let name = part_file_name(12, 345, 6);
        assert_eq!(parse_part_file_name(&name), Some((12, 345, 6)));
        assert_eq!(parse_part_file_name("other.fsp"), None);
        assert_eq!(parse_part_file_name("part-s1-d2-q3.txt"), None);
    }

    #[test]
    fn empty_part_round_trips() {
        let dir = std::env::temp_dir().join("flowstore-empty-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(part_file_name(0, 0, 0));
        write_part(&path, 0, 0, 0, &[]).unwrap();
        let (footer, decoded) = read_part(&path).unwrap();
        assert_eq!(footer.rows, 0);
        assert!(decoded.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_is_deterministic() {
        let records = sample_records();
        assert_eq!(part_bytes(1, 3, 0, &records), part_bytes(1, 3, 0, &records));
    }
}
