//! Per-column lightweight compression codecs.
//!
//! Every codec is a pure function from a value slice to a byte vector and
//! back: `decode(encode(xs), xs.len()) == xs` for **all** inputs (wrapping
//! arithmetic makes the delta families lossless over the full `u64` range).
//! Encoders never consult ambient state, so a part's bytes are a function of
//! its rows alone — the foundation of the byte-identical replay contract.
//!
//! Codecs:
//! - [`encode_varint`] — plain LEB128, for byte/packet counters.
//! - [`encode_delta`] — zigzag delta-of-previous, for sorted-ish ports.
//! - [`encode_delta2`] — delta-of-delta, for near-monotone timestamps.
//! - [`encode_rle`] — run-length `(len, value)` pairs, for enum columns.
//! - [`encode_dict`] — first-appearance-order dictionary over `u128`
//!   values with varint code stream, for address columns.

use crate::error::{Error, Result};

/// Append a LEB128 unsigned varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read a LEB128 unsigned varint, advancing `pos`.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = buf.get(*pos) else {
            return Err(Error::corrupt("varint truncated"));
        };
        *pos += 1;
        if shift >= 64 {
            return Err(Error::corrupt("varint overlong"));
        }
        v |= u64::from(b & 0x7f)
            .checked_shl(shift)
            .ok_or_else(|| Error::corrupt("varint overflow"))?;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-map a signed delta onto an unsigned varint-friendly value.
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a `u128` as two varints (low 64 bits then high 64 bits).
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    put_uvarint(out, v as u64);
    put_uvarint(out, (v >> 64) as u64);
}

/// Read a `u128` written by [`put_u128`].
pub fn get_u128(buf: &[u8], pos: &mut usize) -> Result<u128> {
    let lo = get_uvarint(buf, pos)?;
    let hi = get_uvarint(buf, pos)?;
    Ok(u128::from(lo) | (u128::from(hi) << 64))
}

/// Plain varint stream: one LEB128 value per row.
#[must_use]
pub fn encode_varint(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        put_uvarint(&mut out, v);
    }
    out
}

/// Decode [`encode_varint`].
pub fn decode_varint(buf: &[u8], rows: usize) -> Result<Vec<u64>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        out.push(get_uvarint(buf, &mut pos)?);
    }
    expect_consumed(buf, pos)?;
    Ok(out)
}

/// Delta stream: first value raw, then zigzag(wrapping difference).
///
/// Wrapping subtraction keeps the codec lossless for arbitrary `u64`s —
/// the difference is reinterpreted as `i64`, which is a bijection.
#[must_use]
pub fn encode_delta(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev = 0u64;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            put_uvarint(&mut out, v);
        } else {
            put_uvarint(&mut out, zigzag(v.wrapping_sub(prev) as i64));
        }
        prev = v;
    }
    out
}

/// Decode [`encode_delta`].
pub fn decode_delta(buf: &[u8], rows: usize) -> Result<Vec<u64>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for i in 0..rows {
        let raw = get_uvarint(buf, &mut pos)?;
        let v = if i == 0 {
            raw
        } else {
            prev.wrapping_add(unzigzag(raw) as u64)
        };
        out.push(v);
        prev = v;
    }
    expect_consumed(buf, pos)?;
    Ok(out)
}

/// Delta-of-delta stream for near-monotone timestamps: first value raw,
/// second as zigzag delta, then zigzag of the change in delta.
#[must_use]
pub fn encode_delta2(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev = 0u64;
    let mut prev_delta = 0i64;
    for (i, &v) in values.iter().enumerate() {
        let delta = v.wrapping_sub(prev) as i64;
        match i {
            0 => put_uvarint(&mut out, v),
            1 => put_uvarint(&mut out, zigzag(delta)),
            _ => put_uvarint(&mut out, zigzag(delta.wrapping_sub(prev_delta))),
        }
        prev = v;
        prev_delta = delta;
    }
    out
}

/// Decode [`encode_delta2`].
pub fn decode_delta2(buf: &[u8], rows: usize) -> Result<Vec<u64>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(rows);
    let mut prev = 0u64;
    let mut prev_delta = 0i64;
    for i in 0..rows {
        let raw = get_uvarint(buf, &mut pos)?;
        let (v, delta) = match i {
            0 => (raw, raw as i64),
            1 => {
                let d = unzigzag(raw);
                (prev.wrapping_add(d as u64), d)
            }
            _ => {
                let d = prev_delta.wrapping_add(unzigzag(raw));
                (prev.wrapping_add(d as u64), d)
            }
        };
        out.push(v);
        prev = v;
        prev_delta = delta;
    }
    expect_consumed(buf, pos)?;
    Ok(out)
}

/// Run-length stream: `(run_length, value)` varint pairs.
#[must_use]
pub fn encode_rle(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut iter = values.iter();
    let Some(&first) = iter.next() else {
        return out;
    };
    let mut run_value = first;
    let mut run_len: u64 = 1;
    for &v in iter {
        if v == run_value {
            run_len += 1;
        } else {
            put_uvarint(&mut out, run_len);
            put_uvarint(&mut out, run_value);
            run_value = v;
            run_len = 1;
        }
    }
    put_uvarint(&mut out, run_len);
    put_uvarint(&mut out, run_value);
    out
}

/// Decode [`encode_rle`].
pub fn decode_rle(buf: &[u8], rows: usize) -> Result<Vec<u64>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(rows);
    while out.len() < rows {
        let run_len = get_uvarint(buf, &mut pos)?;
        let value = get_uvarint(buf, &mut pos)?;
        if run_len == 0 || out.len() + run_len as usize > rows {
            return Err(Error::corrupt("rle run exceeds row count"));
        }
        for _ in 0..run_len {
            out.push(value);
        }
    }
    expect_consumed(buf, pos)?;
    Ok(out)
}

/// Dictionary stream over `u128` values: a first-appearance-order
/// dictionary (`count`, then each entry via [`put_u128`]) followed by one
/// varint code per row. First-appearance order makes the encoding a pure
/// function of the value sequence — no hash-order dependence.
#[must_use]
pub fn encode_dict(values: &[u128]) -> Vec<u8> {
    // The dictionary is built with a sorted (value -> code) map so lookups
    // are O(log n) without hash-order iteration anywhere near the output.
    let mut codes_by_value: std::collections::BTreeMap<u128, u64> =
        std::collections::BTreeMap::new();
    let mut dict: Vec<u128> = Vec::new();
    let mut codes: Vec<u64> = Vec::with_capacity(values.len());
    for &v in values {
        let next = dict.len() as u64;
        let code = *codes_by_value.entry(v).or_insert_with(|| {
            dict.push(v);
            next
        });
        codes.push(code);
    }
    let mut out = Vec::new();
    put_uvarint(&mut out, dict.len() as u64);
    for &v in &dict {
        put_u128(&mut out, v);
    }
    for &c in &codes {
        put_uvarint(&mut out, c);
    }
    out
}

/// Decode [`encode_dict`].
pub fn decode_dict(buf: &[u8], rows: usize) -> Result<Vec<u128>> {
    let mut pos = 0usize;
    let dict_len = get_uvarint(buf, &mut pos)? as usize;
    if rows == 0 && dict_len != 0 {
        return Err(Error::corrupt("dictionary for empty column"));
    }
    let mut dict = Vec::with_capacity(dict_len.min(rows));
    for _ in 0..dict_len {
        dict.push(get_u128(buf, &mut pos)?);
    }
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let code = get_uvarint(buf, &mut pos)? as usize;
        let Some(&v) = dict.get(code) else {
            return Err(Error::corrupt("dictionary code out of range"));
        };
        out.push(v);
    }
    expect_consumed(buf, pos)?;
    Ok(out)
}

fn expect_consumed(buf: &[u8], pos: usize) -> Result<()> {
    if pos == buf.len() {
        Ok(())
    } else {
        Err(Error::corrupt("trailing bytes after column"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_extremes() {
        let xs = vec![0, 1, 127, 128, u64::MAX, u64::MAX - 1, 1 << 63];
        let enc = encode_varint(&xs);
        assert_eq!(decode_varint(&enc, xs.len()).ok(), Some(xs));
    }

    #[test]
    fn delta_round_trips_wrapping() {
        let xs = vec![u64::MAX, 0, 5, 3, u64::MAX, u64::MAX / 2];
        let enc = encode_delta(&xs);
        assert_eq!(decode_delta(&enc, xs.len()).ok(), Some(xs));
    }

    #[test]
    fn delta2_round_trips_wrapping() {
        let xs = vec![10, 20, 30, 25, u64::MAX, 0, 0, 7];
        let enc = encode_delta2(&xs);
        assert_eq!(decode_delta2(&enc, xs.len()).ok(), Some(xs));
    }

    #[test]
    fn rle_round_trips_and_compresses_runs() {
        let xs = vec![4u64; 1000];
        let enc = encode_rle(&xs);
        assert!(enc.len() < 8);
        assert_eq!(decode_rle(&enc, xs.len()).ok(), Some(xs));
    }

    #[test]
    fn dict_round_trips_first_appearance_order() {
        let xs = vec![9u128, 7, 9, u128::MAX, 7, 0];
        let enc = encode_dict(&xs);
        assert_eq!(decode_dict(&enc, xs.len()).ok(), Some(xs));
    }

    #[test]
    fn empty_columns_round_trip() {
        assert_eq!(decode_varint(&encode_varint(&[]), 0).ok(), Some(vec![]));
        assert_eq!(decode_delta(&encode_delta(&[]), 0).ok(), Some(vec![]));
        assert_eq!(decode_delta2(&encode_delta2(&[]), 0).ok(), Some(vec![]));
        assert_eq!(decode_rle(&encode_rle(&[]), 0).ok(), Some(vec![]));
        assert_eq!(decode_dict(&encode_dict(&[]), 0).ok(), Some(vec![]));
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        assert!(decode_varint(&[0x80], 1).is_err());
        assert!(decode_rle(&[2, 1, 9, 9], 1).is_err());
        assert!(decode_dict(&encode_varint(&[1]), 1).is_err());
    }
}
