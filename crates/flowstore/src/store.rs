//! [`PartSet`]: an ordered collection of sealed parts, with merged replay
//! and compaction.
//!
//! Replay order is canonical — `(day, stream, seq)` — which matches the
//! day-major emission order of every producer in the workspace: the
//! single-stream residence/long-tail synthesizers (one stream, days
//! ascending) and the sharded subscriber synthesizer (for each day, shards
//! ascending). Replaying a `PartSet` through `flowmon::CollectSink`
//! therefore reproduces the original in-memory `Vec<FlowRecord>` exactly;
//! the tier-1 tests assert this by digest.

use crate::error::{Error, Result};
use crate::part::{parse_part_file_name, read_part, write_part, PartMeta};
use flowmon::{FlowRecord, FlowSink};
use std::path::Path;

/// Summary of a completed replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Parts read.
    pub parts: u64,
    /// Rows delivered.
    pub rows: u64,
}

/// An ordered set of sealed parts.
#[derive(Debug, Clone, Default)]
pub struct PartSet {
    parts: Vec<PartMeta>,
}

impl PartSet {
    /// Scan `dir` for part files (`part-s*-d*-q*.fsp`), ordering them
    /// canonically. Foreign files are ignored; identity comes from the
    /// file name and is re-verified against the footer on read.
    pub fn open(dir: impl AsRef<Path>) -> Result<PartSet> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| Error::io(dir, e))?;
        let mut parts = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::io(dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            let Some((stream, day, seq)) = parse_part_file_name(name) else {
                continue;
            };
            parts.push(PartMeta {
                path: entry.path(),
                stream,
                day,
                seq,
                // Rows/bytes are summary fields; filled from the footer
                // lazily on read. Zero until then.
                rows: 0,
                stored_bytes: 0,
                raw_bytes: 0,
            });
        }
        Ok(PartSet::from_metas(parts))
    }

    /// Build a set from known metas (e.g. the return of
    /// [`crate::SpillSink::finish`]), sorting canonically.
    #[must_use]
    pub fn from_metas(mut parts: Vec<PartMeta>) -> PartSet {
        parts.sort_by_key(PartMeta::canonical_key);
        PartSet { parts }
    }

    /// The parts, in canonical `(day, stream, seq)` order.
    #[must_use]
    pub fn parts(&self) -> &[PartMeta] {
        &self.parts
    }

    /// Number of parts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the set holds no parts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Replay every part, in canonical order, into `sink`. Each part is
    /// digest-verified on read and delivered as one `accept_batch` call
    /// (batch boundaries are part boundaries). Peak memory is one decoded
    /// part.
    pub fn replay_into<S: FlowSink>(&self, sink: &mut S) -> Result<ReplayStats> {
        let mut stats = ReplayStats { parts: 0, rows: 0 };
        for meta in &self.parts {
            let (footer, records) = read_part(&meta.path)?;
            if (footer.stream, footer.day, footer.seq) != (meta.stream, meta.day, meta.seq) {
                return Err(Error::corrupt(format!(
                    "part identity mismatch: file {} says (s{}, d{}, q{})",
                    meta.path.display(),
                    footer.stream,
                    footer.day,
                    footer.seq
                )));
            }
            sink.accept_batch(&records);
            stats.parts += 1;
            stats.rows += footer.rows;
        }
        obs::counter_add("flowstore.replay.parts", stats.parts);
        obs::counter_add("flowstore.replay.rows", stats.rows);
        Ok(stats)
    }

    /// Compact every part in the set into one part at `path`, preserving
    /// canonical row order. The compacted part is byte-identical to a part
    /// written directly from the concatenated rows (the proptests assert
    /// this), so compaction never perturbs replay. Returns the new meta;
    /// the input parts are left in place for the caller to retire.
    pub fn compact(
        &self,
        path: impl AsRef<Path>,
        stream: u64,
        day: u64,
        seq: u32,
    ) -> Result<PartMeta> {
        let mut rows: Vec<FlowRecord> = Vec::new();
        for meta in &self.parts {
            let (_, records) = read_part(&meta.path)?;
            rows.extend_from_slice(&records);
        }
        write_part(path, stream, day, seq, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part::part_file_name;
    use flowmon::{CollectSink, FlowKey, Scope, DAY};

    fn rec(day: u64, stream: u64, i: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                std::net::IpAddr::V4(std::net::Ipv4Addr::from(
                    0x0a00_0000 + (stream as u32) * 256 + i as u32,
                )),
                40_000,
                "198.51.100.1".parse().unwrap(),
                443,
            ),
            start: day * DAY + stream * 100 + i,
            end: day * DAY + stream * 100 + i + 1,
            bytes_orig: i,
            bytes_reply: i,
            packets_orig: 1,
            packets_reply: 1,
            scope: Scope::External,
        }
    }

    #[test]
    fn open_orders_canonically_and_replays() {
        let dir = std::env::temp_dir().join("flowstore-store-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        // Write parts out of order: (day 1, stream 0), (day 0, stream 1),
        // (day 0, stream 0). Canonical replay is day-major.
        let mut expect = Vec::new();
        for (day, stream) in [(0u64, 0u64), (0, 1), (1, 0)] {
            let rows: Vec<_> = (0..10).map(|i| rec(day, stream, i)).collect();
            expect.extend_from_slice(&rows);
            write_part(
                dir.join(part_file_name(stream, day, 0)),
                stream,
                day,
                0,
                &rows,
            )
            .unwrap();
        }
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();

        let set = PartSet::open(&dir).unwrap();
        assert_eq!(set.len(), 3);
        let mut collect = CollectSink::new();
        let stats = set.replay_into(&mut collect).unwrap();
        assert_eq!(stats.rows, 30);
        assert_eq!(collect.into_records(), expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_equals_direct_write() {
        let dir = std::env::temp_dir().join("flowstore-compact-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        let mut all = Vec::new();
        let mut metas = Vec::new();
        for seq in 0..4u32 {
            let rows: Vec<_> = (0..25)
                .map(|i| rec(2, 5, u64::from(seq) * 100 + i))
                .collect();
            all.extend_from_slice(&rows);
            metas.push(write_part(dir.join(part_file_name(5, 2, seq)), 5, 2, seq, &rows).unwrap());
        }
        let set = PartSet::from_metas(metas);
        let compacted = set.compact(dir.join("compacted.fsp"), 5, 2, 0).unwrap();
        assert_eq!(compacted.rows, 100);

        let direct = dir.join("direct.fsp");
        write_part(&direct, 5, 2, 0, &all).unwrap();
        assert_eq!(
            std::fs::read(&compacted.path).unwrap(),
            std::fs::read(&direct).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
