//! # flowstore — a spillable, deterministic, columnar flow store
//!
//! `CollectSink` fidelity without `CollectSink` memory: sinks write the
//! record stream into sorted immutable **day-parts** (one file per
//! `(stream, day, seq)`, one compressed column per [`flowmon::FlowRecord`]
//! field) and replay them **byte-identically** later. Million-subscriber
//! worlds spill each in-flight day-part as it completes, so peak RSS is
//! bounded by one day-part per worker instead of the whole run.
//!
//! ## Part layout
//!
//! ```text
//! file: part-s{stream:08}-d{day:08}-q{seq:04}.fsp
//!
//! +-------------+--------------------------+--------+------------+------+
//! | magic (8 B) | column region            | footer | footer len | tail |
//! |  FSPART1\0  | 13 compressed columns    |        |   (u32 LE) | FSP1 |
//! +-------------+--------------------------+--------+------------+------+
//! ```
//!
//! The footer records the part identity `(stream, day, seq)`, the row
//! count, per-column `{offset, len, raw_bytes, min, max}` and an FNV-1a64
//! content digest over the column region, verified on every read. Codecs:
//! delta / delta-of-delta for timestamps and ports, first-appearance
//! dictionaries for addresses, run-length for enum columns, varint for
//! counters (see [`part`] for the full column table).
//!
//! ## Determinism contract
//!
//! * A sealed part's bytes are a **pure function** of its identity and
//!   rows — no wall clock, no ambient RNG, no hash-order iteration.
//! * [`SpillSink`] seals at day boundaries of the producer stream, so the
//!   set of parts a run writes depends only on `(sites, seed, days)`,
//!   never on the thread layout.
//! * [`PartSet::replay_into`] delivers parts in canonical
//!   `(day, stream, seq)` order — the emission order of every producer —
//!   so replay through `flowmon::CollectSink` reproduces the in-memory
//!   `Vec<FlowRecord>` exactly. Tier-1 tests compare digests
//!   ([`records_digest`] / [`DigestSink`]) on both sides.
//! * Compacting K parts yields the same bytes as writing their
//!   concatenated rows as one part.
//!
//! ## Quick start
//!
//! ```
//! use flowmon::{CollectSink, FlowSink};
//! use flowstore::{records_digest, PartSet, SpillSink};
//!
//! let dir = std::env::temp_dir().join("flowstore-doc");
//! let mut spill = SpillSink::new(&dir, 0)?;
//! // ... feed spill through any synthesis path (it is a FlowSink) ...
//! let parts = spill.finish()?;
//!
//! let mut collect = CollectSink::new();
//! PartSet::from_metas(parts).replay_into(&mut collect)?;
//! let replayed = collect.into_records();
//! assert_eq!(records_digest(&replayed), records_digest(&[]));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), flowstore::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod digest;
mod error;
pub mod part;
mod spill;
mod store;

pub use digest::{fnv1a64, records_digest, DigestSink};
pub use error::{Error, Result};
pub use part::{
    parse_part_file_name, part_bytes, part_file_name, read_part, write_part, ColumnMeta, Footer,
    PartMeta, COLUMNS, COLUMN_NAMES,
};
pub use spill::SpillSink;
pub use store::{PartSet, ReplayStats};
