//! Content digests for flow streams.
//!
//! [`records_digest`] and [`DigestSink`] compute the same FNV-1a64 value
//! over a record sequence — one from a slice, one streaming — so a live
//! synthesis run can be fingerprinted in O(1) memory and later compared
//! against a part replay without materializing either side.

use flowmon::{FlowRecord, FlowSink};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a64 over a byte slice.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fold_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fold_record(h: &mut u64, r: &FlowRecord) {
    let (src_tag, src_bits): (u8, u128) = match r.key.src {
        std::net::IpAddr::V4(a) => (0, u128::from(u32::from(a))),
        std::net::IpAddr::V6(a) => (1, u128::from(a)),
    };
    let (dst_tag, dst_bits): (u8, u128) = match r.key.dst {
        std::net::IpAddr::V4(a) => (0, u128::from(u32::from(a))),
        std::net::IpAddr::V6(a) => (1, u128::from(a)),
    };
    let proto: u8 = match r.key.proto {
        flowmon::Proto::Tcp => 0,
        flowmon::Proto::Udp => 1,
        flowmon::Proto::Icmp => 2,
    };
    let icmp: u64 = match r.key.icmp {
        None => 0,
        Some(m) => {
            (1u64 << 32)
                | (u64::from(m.icmp_type) << 24)
                | (u64::from(m.icmp_code) << 16)
                | u64::from(m.icmp_id)
        }
    };
    let scope: u8 = match r.scope {
        flowmon::Scope::External => 0,
        flowmon::Scope::Internal => 1,
    };
    fold_bytes(h, &[proto, src_tag]);
    fold_bytes(h, &src_bits.to_le_bytes());
    fold_bytes(h, &[dst_tag]);
    fold_bytes(h, &dst_bits.to_le_bytes());
    fold_bytes(h, &r.key.sport.to_le_bytes());
    fold_bytes(h, &r.key.dport.to_le_bytes());
    fold_bytes(h, &icmp.to_le_bytes());
    fold_bytes(h, &r.start.to_le_bytes());
    fold_bytes(h, &r.end.to_le_bytes());
    fold_bytes(h, &r.bytes_orig.to_le_bytes());
    fold_bytes(h, &r.bytes_reply.to_le_bytes());
    fold_bytes(h, &r.packets_orig.to_le_bytes());
    fold_bytes(h, &r.packets_reply.to_le_bytes());
    fold_bytes(h, &[scope]);
}

/// Order-sensitive digest of a record sequence. Equal sequences — and only
/// equal sequences, up to hash collisions — produce equal digests.
#[must_use]
pub fn records_digest(records: &[FlowRecord]) -> u64 {
    let mut h = FNV_OFFSET;
    for r in records {
        fold_record(&mut h, r);
    }
    h
}

/// A [`FlowSink`] that fingerprints the stream in O(1) memory.
///
/// `DigestSink` fed a stream reports the same digest as
/// [`records_digest`] over the equivalent `Vec` — the bridge between
/// spill-scale runs (no `Vec` exists) and in-memory verification.
#[derive(Debug, Clone)]
pub struct DigestSink {
    hash: u64,
    count: u64,
}

impl DigestSink {
    /// A fresh digest over the empty stream.
    #[must_use]
    pub fn new() -> DigestSink {
        DigestSink {
            hash: FNV_OFFSET,
            count: 0,
        }
    }

    /// The digest of everything accepted so far.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Number of records accepted.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Default for DigestSink {
    fn default() -> Self {
        DigestSink::new()
    }
}

impl FlowSink for DigestSink {
    fn accept(&mut self, record: &FlowRecord) {
        fold_record(&mut self.hash, record);
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowmon::{FlowKey, Scope};

    fn rec(i: u64) -> FlowRecord {
        FlowRecord {
            key: FlowKey::tcp(
                "10.1.2.3".parse().unwrap(),
                (i % 65_536) as u16,
                "203.0.113.9".parse().unwrap(),
                443,
            ),
            start: i * 100,
            end: i * 100 + 5,
            bytes_orig: i,
            bytes_reply: i * 3,
            packets_orig: 1,
            packets_reply: 2,
            scope: Scope::External,
        }
    }

    #[test]
    fn sink_matches_slice_digest() {
        let records: Vec<_> = (0..500).map(rec).collect();
        let mut sink = DigestSink::new();
        sink.accept_batch(&records);
        assert_eq!(sink.digest(), records_digest(&records));
        assert_eq!(sink.count(), 500);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = vec![rec(1), rec(2)];
        let b = vec![rec(2), rec(1)];
        assert_ne!(records_digest(&a), records_digest(&b));
    }

    #[test]
    fn empty_stream_digest_is_offset_basis() {
        assert_eq!(records_digest(&[]), DigestSink::new().digest());
    }
}
