//! Property tests for the flow store: codec round-trip identity over the
//! full value domain, part encode/decode identity for arbitrary records,
//! compaction equivalence, and footer min/max consistency.

use flowmon::{FlowKey, FlowRecord, IcmpMeta, Proto, Scope};
use flowstore::codec::{
    decode_delta, decode_delta2, decode_dict, decode_rle, decode_varint, encode_delta,
    encode_delta2, encode_dict, encode_rle, encode_varint,
};
use flowstore::{part_bytes, part_file_name, records_digest, write_part, PartSet};
use proptest::prelude::*;
use std::net::IpAddr;

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        (any::<u8>(), any::<bool>(), any::<u128>(), any::<u128>()),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
        ),
        (any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        any::<bool>(),
    )
        .prop_map(
            |(
                (proto_sel, v6, src_bits, dst_bits),
                (sport, dport, icmp_type, icmp_code, icmp_id),
                (start, end),
                (bytes_orig, bytes_reply, packets_orig, packets_reply),
                internal,
            )| {
                let proto = match proto_sel % 3 {
                    0 => Proto::Tcp,
                    1 => Proto::Udp,
                    _ => Proto::Icmp,
                };
                let addr = |bits: u128| -> IpAddr {
                    if v6 {
                        IpAddr::V6(std::net::Ipv6Addr::from(bits))
                    } else {
                        IpAddr::V4(std::net::Ipv4Addr::from(bits as u32))
                    }
                };
                let icmp = (proto == Proto::Icmp).then_some(IcmpMeta {
                    icmp_type,
                    icmp_code,
                    icmp_id,
                });
                FlowRecord {
                    key: FlowKey {
                        proto,
                        src: addr(src_bits),
                        dst: addr(dst_bits),
                        sport,
                        dport,
                        icmp,
                    },
                    start,
                    end,
                    bytes_orig,
                    bytes_reply,
                    packets_orig,
                    packets_reply,
                    scope: if internal {
                        Scope::Internal
                    } else {
                        Scope::External
                    },
                }
            },
        )
}

fn arb_records() -> impl Strategy<Value = Vec<FlowRecord>> {
    proptest::collection::vec(arb_record(), 0..80)
}

proptest! {
    /// Varint codec: decode(encode(xs)) == xs over the full u64 domain.
    #[test]
    fn varint_round_trip(xs in proptest::collection::vec(any::<u64>(), 0..200)) {
        prop_assert_eq!(decode_varint(&encode_varint(&xs), xs.len()).unwrap(), xs);
    }

    /// Delta codec: lossless for arbitrary (unsorted, wrapping) values.
    #[test]
    fn delta_round_trip(xs in proptest::collection::vec(any::<u64>(), 0..200)) {
        prop_assert_eq!(decode_delta(&encode_delta(&xs), xs.len()).unwrap(), xs);
    }

    /// Delta-of-delta codec: lossless for arbitrary values.
    #[test]
    fn delta2_round_trip(xs in proptest::collection::vec(any::<u64>(), 0..200)) {
        prop_assert_eq!(decode_delta2(&encode_delta2(&xs), xs.len()).unwrap(), xs);
    }

    /// Run-length codec: lossless, including degenerate run shapes.
    #[test]
    fn rle_round_trip(xs in proptest::collection::vec(0u64..4, 0..300)) {
        prop_assert_eq!(decode_rle(&encode_rle(&xs), xs.len()).unwrap(), xs);
    }

    /// Dictionary codec: lossless over u128 values with repeats.
    #[test]
    fn dict_round_trip(xs in proptest::collection::vec(any::<u128>(), 0..120)) {
        prop_assert_eq!(decode_dict(&encode_dict(&xs), xs.len()).unwrap(), xs);
    }

    /// A full part round-trips arbitrary records exactly (written via the
    /// file path, re-read with digest verification).
    #[test]
    fn part_round_trip(records in arb_records(), stream in any::<u64>(), day in any::<u64>()) {
        let dir = std::env::temp_dir().join("flowstore-prop-part");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.fsp");
        write_part(&path, stream, day, 0, &records).unwrap();
        let (footer, decoded) = flowstore::read_part(&path).unwrap();
        prop_assert_eq!(footer.rows as usize, records.len());
        prop_assert_eq!(&decoded, &records);
        prop_assert_eq!(records_digest(&decoded), records_digest(&records));
    }

    /// Part encoding is a pure function of (identity, rows).
    #[test]
    fn part_bytes_deterministic(records in arb_records()) {
        prop_assert_eq!(part_bytes(3, 9, 1, &records), part_bytes(3, 9, 1, &records));
    }

    /// Compacting K parts produces byte-identical output to writing the
    /// concatenated rows as one part directly.
    #[test]
    fn compaction_equals_one_big_part(records in arb_records(), k in 1usize..6) {
        let dir = std::env::temp_dir().join("flowstore-prop-compact");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let chunk = (records.len() / k).max(1);
        let mut metas = Vec::new();
        for (seq, rows) in records.chunks(chunk).enumerate() {
            let seq = seq as u32;
            metas.push(write_part(dir.join(part_file_name(0, 0, seq)), 0, 0, seq, rows).unwrap());
        }
        let compacted = PartSet::from_metas(metas)
            .compact(dir.join("compacted.fsp"), 0, 0, 0)
            .unwrap();
        let direct = dir.join("direct.fsp");
        write_part(&direct, 0, 0, 0, &records).unwrap();
        prop_assert_eq!(
            std::fs::read(&compacted.path).unwrap(),
            std::fs::read(&direct).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Footer min/max matches the semantic min/max of the decoded values
    /// for every numeric column (addresses compare by raw bit value).
    #[test]
    fn footer_minmax_consistent(records in arb_records()) {
        let dir = std::env::temp_dir().join("flowstore-prop-minmax");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.fsp");
        write_part(&path, 0, 0, 0, &records).unwrap();
        let (footer, _) = flowstore::read_part(&path).unwrap();

        let minmax = |vals: Vec<u128>| -> (u128, u128) {
            (
                vals.iter().min().copied().unwrap_or(0),
                vals.iter().max().copied().unwrap_or(0),
            )
        };
        let addr_bits = |a: IpAddr| -> u128 {
            match a {
                IpAddr::V4(v4) => u128::from(u32::from(v4)),
                IpAddr::V6(v6) => u128::from(v6),
            }
        };
        let cases: Vec<(usize, Vec<u128>)> = vec![
            (1, records.iter().map(|r| addr_bits(r.key.src)).collect()),
            (2, records.iter().map(|r| addr_bits(r.key.dst)).collect()),
            (3, records.iter().map(|r| u128::from(r.key.sport)).collect()),
            (4, records.iter().map(|r| u128::from(r.key.dport)).collect()),
            (6, records.iter().map(|r| u128::from(r.start)).collect()),
            (7, records.iter().map(|r| u128::from(r.end)).collect()),
            (8, records.iter().map(|r| u128::from(r.bytes_orig)).collect()),
            (9, records.iter().map(|r| u128::from(r.bytes_reply)).collect()),
            (10, records.iter().map(|r| u128::from(r.packets_orig)).collect()),
            (11, records.iter().map(|r| u128::from(r.packets_reply)).collect()),
        ];
        for (col, vals) in cases {
            let (min, max) = minmax(vals);
            prop_assert_eq!(footer.columns[col].min, min, "col {} min", col);
            prop_assert_eq!(footer.columns[col].max, max, "col {} max", col);
        }
    }
}
