//! Frozen flattened multibit LPM engine (Poptrie/DXR-style), compiled from
//! an [`LpmTrie`].
//!
//! # Layout
//!
//! The radix trie stays the *mutable authority*; [`FrozenLpm::from_trie`]
//! (or [`Lpm4::freeze`](crate::Lpm4::freeze)/[`Lpm6::freeze`](crate::Lpm6::freeze)) compiles an
//! immutable lookup structure optimised for exactly one thing: resolving
//! addresses against a table that is not changing.
//!
//! * **Direct root table** — the first [`Bits::ROOT_BITS`] (16) address bits
//!   index a `2^16`-entry array whose slots hold either a final result id or
//!   a tagged multibit-node index. Prefixes shorter than the root stride are
//!   *leaf-pushed*: painted over every slot they cover, deepest-wins, so a
//!   root hit already carries the correct fallback (the DIR-24-8 trick the
//!   trie's `short_best` table performs at lookup time, done once at
//!   compile time instead).
//! * **Stride-6 popcount nodes** — below the root, each node consumes the
//!   next 6 address bits. A node is two `u64` bitmaps plus two base indices:
//!   `vector` marks which of the 64 chunks continue into a child node, and
//!   children live contiguously at `base_children + popcount(vector below
//!   chunk)` — the Poptrie compression. Chunks that *don't* continue resolve
//!   to a leaf-pushed result; consecutive equal results are run-length
//!   collapsed via `leafvec` (a bit marks each run start), and the result id
//!   lives at `base_leaves + popcount(leafvec through chunk) - 1`.
//! * **Path-compressed skips** — a node whose subtree agrees on a run of
//!   address bits (the usual shape of sparse tables: one `/48` alone under
//!   a root slot) verifies the whole run with a single 64-bit compare
//!   (`skip_key`) instead of walking a chain of single-child stride levels;
//!   a mismatch resolves to the covering result from above. Subtrees that
//!   collapse to a single result are stored as *uniform* nodes with the
//!   result id inline, skipping the leaf-array load entirely.
//!
//! Leaf-pushing means the longest match is always resolved *downward*: a
//! lookup is a short loop of `bitmap → popcount-rank → array index` steps
//! over three dense arrays, never backtracking and never chasing per-prefix
//! heap nodes. A lone IPv6 /48 resolves in 1 root load + 1 uniform node +
//! 1 result row — the same dependent-load count as the radix trie — while
//! dense subtrees (a routing table's sequential allocations) resolve in
//! stride-6 hops over arrays small enough to stay cache-hot; a 100k-prefix
//! RIB flattens to a few MB of contiguous memory.
//!
//! Tables small enough for the trie's linear-scan mode (≤ a dozen entries —
//! a residence router's LAN set) freeze to a sorted linear scan and never
//! allocate the root table.
//!
//! # Batched lookups, prefetch, and the memo
//!
//! [`FrozenLpm::longest_match_many`] keeps the direct-mapped duplicate memo
//! in front (hot CDN addresses resolved by thousands of FQDNs cost one
//! walk), but the memo now *bypasses itself* when a probe window over the
//! head of the batch observes a hit rate below [`MEMO_BYPASS`]'s threshold —
//! decided deterministically from batch contents alone, so attribution
//! output stays byte-identical. Bypassed (and memo-missing) tails resolve
//! through an interleaved walker: `LANES` (16) addresses advance one node level
//! per round, issuing a software prefetch for each lane's next node, so the
//! DRAM latency of up to 8 independent walks overlaps instead of
//! serialising. This is where the batch path wins on *unique*-address
//! batches (long-tail attribution), which the memo alone used to tax.
//!
//! ```
//! use iputil::{Lpm4, Prefix4};
//! let mut rib: Lpm4<&str> = Lpm4::new();
//! rib.insert("10.0.0.0/8".parse().unwrap(), "ten");
//! rib.insert("10.9.0.0/16".parse().unwrap(), "ten-nine");
//! let frozen = rib.freeze();
//! let (p, v) = frozen.longest_match("10.9.4.4".parse().unwrap()).unwrap();
//! assert_eq!((p.to_string().as_str(), *v), ("10.9.0.0/16", "ten-nine"));
//! // The authority and the frozen engine answer identically, batched too.
//! let addrs: Vec<std::net::Ipv4Addr> = vec!["10.1.2.3".parse().unwrap()];
//! assert_eq!(
//!     frozen.longest_match_many(&addrs)[0].map(|(p, &v)| (p, v)),
//!     rib.longest_match_many(&addrs)[0].map(|(p, &v)| (p, v)),
//! );
//! ```

use crate::prefix::{Prefix4, Prefix6};
use crate::trie::{Bits, LpmTrie};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Bits consumed per multibit node below the root table.
const STRIDE: u8 = 6;

/// "No result" marker: an untagged entry equal to this means no covering
/// prefix exists. Tables are limited to `2^31 - 1` results/nodes (a full
/// IPv4 routing table is ~1M).
const RES_NONE: u32 = 0x7fff_ffff;

/// High bit tagging a root/walk entry as a multibit-node index rather than
/// a final result id.
const NODE_TAG: u32 = 1 << 31;

/// Interleaved walker width for the batched path: enough independent walks
/// in flight to saturate the core's outstanding-miss capacity (line-fill
/// buffers), few enough that the lane state stays in L1.
const LANES: usize = 16;

/// Memo bypass policy: probe the first `WINDOW` batch entries through the
/// memo; if fewer than `WINDOW / DIVISOR` hit, the remainder of the batch
/// skips the memo entirely. Both the decision and the output are pure
/// functions of the batch contents.
pub const MEMO_BYPASS: (usize, usize) = (256, 8);

/// One flattened multibit node (40 bytes): chunk-occupancy bitmaps, base
/// indices into the contiguous child and leaf arrays, and the node's
/// path-compression run (`skip` address bits verified against `skip_key`
/// before the stride chunk is consumed).
///
/// Two encodings ride on the bitmaps:
/// * `vector == 0 && leafvec == 0` — a *uniform* node: every address that
///   survives the skip check resolves to the result id stored directly in
///   `base_leaves` (no leaf-array load). This is the shape every
///   path-compressed lone prefix collapses to.
/// * otherwise — the regular Poptrie node described on the fields.
#[derive(Debug, Clone, Copy, Default)]
struct MbNode {
    /// Bit `c` set ⇒ chunk `c` continues into child node
    /// `base_children + popcount(vector & (bits below c))`.
    vector: u64,
    /// Bit `c` set ⇒ chunk `c` starts a new leaf run; the run's result id is
    /// `leaves[base_leaves + popcount(leafvec & (bits through c)) - 1]`.
    leafvec: u64,
    /// The `skip` address bits at this node's depth, right-aligned — every
    /// prefix below this node agrees on them, so one compare replaces a
    /// chain of single-child stride levels (classic path compression,
    /// carried over from the radix trie so sparse subtrees stay O(1) loads).
    skip_key: u64,
    /// First child node index (children of one node are contiguous).
    base_children: u32,
    /// First leaf-run slot in the shared leaf array (or the inline result
    /// id when the node is uniform — see the type docs).
    base_leaves: u32,
    /// Result id when the skip compare fails: the best match covering this
    /// subtree from above (`RES_NONE` when nothing covers it).
    miss: u32,
    /// Number of address bits `skip_key` verifies (0 = no compression).
    skip: u8,
}

#[derive(Debug, Clone)]
enum Repr<K> {
    /// Sorted `(key, plen, result id)` linear scan — tables that fit the
    /// trie's small-table mode never pay for the root array.
    Small(Vec<(K, u8, u32)>),
    Table {
        /// `2^ROOT_BITS` entries: result id, or `NODE_TAG | node index`.
        root: Vec<u32>,
        nodes: Vec<MbNode>,
        /// Run-length-collapsed leaf result ids, shared across nodes.
        leaves: Vec<u32>,
    },
}

/// An immutable, flattened multibit LPM table compiled from an [`LpmTrie`].
///
/// Answers exactly what the source trie answered at freeze time (the
/// differential property tests assert byte-identical results); mutation
/// happens on the trie, followed by a fresh [`FrozenLpm::from_trie`].
#[derive(Debug, Clone)]
pub struct FrozenLpm<K: Bits, V> {
    repr: Repr<K>,
    /// `(plen, value)` per stored prefix, indexed by result id.
    results: Vec<(u8, V)>,
}

impl<K: Bits, V: Clone> FrozenLpm<K, V> {
    /// Compile the trie's current contents into the flattened layout.
    /// Cost is O(prefixes · WIDTH/STRIDE) plus the `2^ROOT_BITS` root
    /// array; the trie is untouched.
    pub fn from_trie(trie: &LpmTrie<K, V>) -> FrozenLpm<K, V> {
        let mut results: Vec<(u8, V)> = Vec::with_capacity(trie.len());
        let mut entries: Vec<(K, u8, u32)> = Vec::with_capacity(trie.len());
        trie.for_each(|key, plen, value| {
            let id = results.len() as u32;
            assert!(id < RES_NONE, "FrozenLpm supports < 2^31 - 1 prefixes");
            results.push((plen, value.clone()));
            entries.push((key, plen, id));
        });
        // `for_each` visits in (key, plen) order — the builder relies on it
        // (shallow prefixes precede the deeper entries they cover).
        debug_assert!(entries
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let repr = if entries.len() <= crate::trie::SMALL_MAX {
            Repr::Small(entries)
        } else {
            build_table::<K>(&entries)
        };
        FrozenLpm { repr, results }
    }
}

impl<K: Bits, V> FrozenLpm<K, V> {
    /// Number of prefixes captured at freeze time.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if the frozen table holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Flattened multibit nodes (0 in small/linear-scan representation) —
    /// the footprint metric next to [`FrozenLpm::heap_bytes`].
    pub fn node_count(&self) -> usize {
        match &self.repr {
            Repr::Small(_) => 0,
            Repr::Table { nodes, .. } => nodes.len(),
        }
    }

    /// Heap footprint of the lookup arrays and results, in bytes.
    pub fn heap_bytes(&self) -> usize {
        let repr = match &self.repr {
            Repr::Small(entries) => std::mem::size_of_val(entries.as_slice()),
            Repr::Table {
                root,
                nodes,
                leaves,
            } => {
                std::mem::size_of_val(root.as_slice())
                    + std::mem::size_of_val(nodes.as_slice())
                    + std::mem::size_of_val(leaves.as_slice())
            }
        };
        repr + std::mem::size_of_val(self.results.as_slice())
    }

    /// Resolve one address to its result id (`RES_NONE` = no match).
    #[inline]
    fn lookup_id(&self, addr: K) -> u32 {
        match &self.repr {
            Repr::Small(entries) => {
                let mut best = RES_NONE;
                let mut best_len = 0u8;
                for &(key, plen, id) in entries {
                    if addr.truncate(plen) == key && (best == RES_NONE || plen >= best_len) {
                        best = id;
                        best_len = plen;
                    }
                }
                best
            }
            Repr::Table {
                root,
                nodes,
                leaves,
            } => {
                let mut entry = root[addr.root_slot()];
                let mut depth = K::ROOT_BITS;
                while entry & NODE_TAG != 0 {
                    let node = &nodes[(entry & !NODE_TAG) as usize];
                    entry = walk_step(node, leaves, addr, &mut depth);
                }
                entry
            }
        }
    }

    #[inline]
    fn result(&self, id: u32) -> Option<(u8, &V)> {
        if id == RES_NONE {
            return None;
        }
        let (plen, value) = &self.results[id as usize];
        Some((*plen, value))
    }

    #[inline]
    fn value(&self, id: u32) -> Option<&V> {
        if id == RES_NONE {
            return None;
        }
        Some(&self.results[id as usize].1)
    }

    /// Longest-prefix-match against the frozen table: identical answers to
    /// the source trie's [`LpmTrie::longest_match`] at freeze time.
    #[inline]
    pub fn longest_match(&self, addr: K) -> Option<(u8, &V)> {
        obs::counter_add("lpm.frozen_lookups", 1);
        self.result(self.lookup_id(addr))
    }

    /// Batched longest-prefix-match preserving input order: the duplicate
    /// memo in front (with deterministic bypass — see [`MEMO_BYPASS`]),
    /// interleaved prefetching walks behind it.
    pub fn longest_match_many(&self, addrs: &[K]) -> Vec<Option<(u8, &V)>> {
        obs::counter_add("lpm.frozen_lookups", addrs.len() as u64);
        memoized_batch(
            addrs,
            |addr| self.result(self.lookup_id(addr)),
            |rest, out| self.bulk_append(rest, out, |id| self.result(id)),
        )
    }

    /// Batched value-only lookup (no prefix-length/`Prefix` materialisation)
    /// — the slim path attribution pipelines run on, where only the mapped
    /// value matters and every extra per-record map pass shows up at
    /// 200k-records-per-day scale. Same memo, bypass, and interleaved walks
    /// as [`FrozenLpm::longest_match_many`]; same answers, minus the plen.
    pub fn values_many(&self, addrs: &[K]) -> Vec<Option<&V>> {
        obs::counter_add("lpm.frozen_lookups", addrs.len() as u64);
        memoized_batch(
            addrs,
            |addr| self.value(self.lookup_id(addr)),
            |rest, out| self.bulk_append(rest, out, |id| self.value(id)),
        )
    }

    /// Resolve `addrs` with [`LANES`] interleaved walks: every lane
    /// advances one node level per round and prefetches its next node, so
    /// independent cache misses overlap. Resolved ids are materialised
    /// through `map` (full `(plen, value)` rows or bare values).
    fn bulk_append<R, M>(&self, addrs: &[K], out: &mut Vec<R>, map: M)
    where
        M: Fn(u32) -> R,
    {
        let (root, nodes, leaves) = match &self.repr {
            // Small tables are L1-resident linear scans — nothing to hide.
            Repr::Small(_) => {
                out.extend(addrs.iter().map(|&a| map(self.lookup_id(a))));
                return;
            }
            Repr::Table {
                root,
                nodes,
                leaves,
            } => (root, nodes, leaves),
        };
        for group in addrs.chunks(LANES) {
            let mut entry = [RES_NONE; LANES];
            let mut depth = [K::ROOT_BITS; LANES];
            for (lane, &addr) in group.iter().enumerate() {
                entry[lane] = root[addr.root_slot()];
                if entry[lane] & NODE_TAG != 0 {
                    prefetch(nodes, (entry[lane] & !NODE_TAG) as usize);
                }
            }
            loop {
                let mut walking = false;
                for (lane, &addr) in group.iter().enumerate() {
                    if entry[lane] & NODE_TAG == 0 {
                        continue;
                    }
                    walking = true;
                    let node = &nodes[(entry[lane] & !NODE_TAG) as usize];
                    let next = walk_step(node, leaves, addr, &mut depth[lane]);
                    if next & NODE_TAG != 0 {
                        prefetch(nodes, (next & !NODE_TAG) as usize);
                    } else if next != RES_NONE {
                        // Lane resolved: start pulling its result row now so
                        // the `results[id]` reads at flush time are warm.
                        prefetch(&self.results, next as usize);
                    }
                    entry[lane] = next;
                }
                if !walking {
                    break;
                }
            }
            out.extend(entry[..group.len()].iter().map(|&id| map(id)));
        }
    }
}

/// One full node visit: verify the path-compression run, resolve uniform
/// nodes inline, otherwise branch into the child for the next stride chunk
/// or resolve the covering leaf run. Advances `depth` past the consumed
/// bits (skip + stride).
#[inline(always)]
fn walk_step<K: Bits>(node: &MbNode, leaves: &[u32], addr: K, depth: &mut u8) -> u32 {
    if node.skip > 0 {
        if addr.bits_at(*depth, node.skip) != node.skip_key {
            // Diverged inside the compressed run: nothing below can match,
            // the answer is whatever covered this subtree from above.
            return node.miss;
        }
        *depth += node.skip;
    }
    if node.vector == 0 && node.leafvec == 0 {
        // Uniform node: one result covers the whole (post-skip) subtree.
        return node.base_leaves;
    }
    let stride = (K::WIDTH - *depth).min(STRIDE);
    let chunk = addr.chunk(*depth, stride);
    *depth += stride;
    if node.vector >> chunk & 1 == 1 {
        let rank = (node.vector & ((1u64 << chunk) - 1)).count_ones();
        NODE_TAG | (node.base_children + rank)
    } else {
        // Bits 0..=chunk; `1 << 63 << 1` wraps to 0, giving all-ones.
        let through = ((1u64 << chunk) << 1).wrapping_sub(1);
        let rank = (node.leafvec & through).count_ones() - 1;
        leaves[(node.base_leaves + rank) as usize]
    }
}

/// Best-effort prefetch of `slice[idx]` into L1. A hint only: lookups never
/// depend on it, and non-x86_64 targets compile it away.
#[inline(always)]
fn prefetch<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(entry) = slice.get(idx) {
        // SAFETY: `entry` is a valid reference; PREFETCHT0 has no
        // architectural effect beyond cache-line movement.
        #[allow(unsafe_code)]
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                entry as *const T as *const i8,
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slice, idx);
}

/// Shared batched-lookup front: a direct-mapped duplicate memo with a
/// deterministic low-hit-rate bypass. `scalar` answers one address;
/// `bulk` appends answers for a slice (the engine's fastest bypass path).
///
/// The memo probe runs over the first [`MEMO_BYPASS`]`.0` addresses; if
/// hits stay under `window / `[`MEMO_BYPASS`]`.1`, the batch is
/// duplicate-poor and the rest skips the memo. Output and the decision
/// depend only on the batch contents, so results stay byte-identical
/// whichever path runs.
pub(crate) fn memoized_batch<K: Bits, R, S, B>(addrs: &[K], scalar: S, bulk: B) -> Vec<R>
where
    R: Copy,
    S: Fn(K) -> R,
    B: Fn(&[K], &mut Vec<R>),
{
    if addrs.is_empty() {
        return Vec::new();
    }
    // Power-of-two direct-mapped memo sized to the batch (capped: the
    // point is cache residency, not completeness). The probe phase only
    // ever inserts `window` distinct keys, so the memo starts at probe
    // size; duplicate-rich batches that stay on the memo path get a
    // batch-sized memo for the remainder. Memo shape never changes
    // answers — only which duplicates are served without a walk.
    let (window, divisor) = MEMO_BYPASS;
    let probe = addrs.len().min(window);
    let slots = (probe.next_power_of_two() * 2).clamp(64, 4096);
    let mut memo: Vec<Option<(K, R)>> = vec![None; slots];
    // Tally memo traffic locally and flush once per batch: the memo is
    // per-call, so hit/miss/bypass totals are a pure function of the input
    // batches and stay layout-invariant.
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut out: Vec<R> = Vec::with_capacity(addrs.len());
    // Captures only `scalar`; the mutable state is threaded through
    // arguments so the hit count stays readable between the two loops.
    let probe_memo = |addr: K,
                      memo: &mut Vec<Option<(K, R)>>,
                      hits: &mut u64,
                      misses: &mut u64,
                      out: &mut Vec<R>| {
        let slots = memo.len();
        let slot =
            (addr.fold_u64().wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48) as usize & (slots - 1);
        match memo[slot] {
            Some((key, res)) if key == addr => {
                *hits += 1;
                out.push(res);
            }
            _ => {
                *misses += 1;
                let res = scalar(addr);
                memo[slot] = Some((addr, res));
                out.push(res);
            }
        }
    };
    for &addr in &addrs[..probe] {
        probe_memo(addr, &mut memo, &mut hits, &mut misses, &mut out);
    }
    let rest = &addrs[probe..];
    if !rest.is_empty() {
        if (hits as usize) * divisor < probe {
            // Duplicate-poor batch: the memo costs more than it saves.
            obs::counter_add("lpm.memo_bypassed", rest.len() as u64);
            bulk(rest, &mut out);
        } else {
            // Duplicate-rich: grow the memo to batch size (rehash-free —
            // just a fresh table; the probe window's entries re-fault once).
            let grown = (addrs.len().next_power_of_two()).clamp(64, 4096);
            if grown > slots {
                memo = vec![None; grown];
            }
            for &addr in rest {
                probe_memo(addr, &mut memo, &mut hits, &mut misses, &mut out);
            }
        }
    }
    obs::counter_add("lpm.memo_hits", hits);
    obs::counter_add("lpm.memo_misses", misses);
    out
}

/// Compile sorted `(key, plen, result id)` entries into the flattened
/// root + nodes + leaves arrays.
fn build_table<K: Bits>(entries: &[(K, u8, u32)]) -> Repr<K> {
    let mut root = vec![RES_NONE; 1usize << K::ROOT_BITS];
    let mut nodes: Vec<MbNode> = Vec::new();
    let mut leaves: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let (key, plen, id) = entries[i];
        if plen <= K::ROOT_BITS {
            // Leaf-push the short prefix over every root slot it covers. In
            // (key, plen) order a covering (shallower) prefix paints before
            // anything it covers, so deepest-wins falls out of plain
            // overwrites — and no later short paint can cross a slot already
            // owned by a deep group (the group's covering shorts all sorted
            // earlier).
            let base = key.root_slot();
            let count = 1usize << (K::ROOT_BITS - plen);
            for slot in &mut root[base..base + count] {
                debug_assert_eq!(*slot & NODE_TAG, 0);
                *slot = id;
            }
            i += 1;
        } else {
            // All remaining entries of this root slot are ≥ this key, hence
            // also deep: one contiguous group per subtree.
            let slot = key.root_slot();
            let mut j = i + 1;
            while j < entries.len() && entries[j].0.root_slot() == slot {
                j += 1;
            }
            let inherited = root[slot];
            let node = nodes.len();
            nodes.push(MbNode::default());
            root[slot] = NODE_TAG | node as u32;
            build_node(
                &mut nodes,
                &mut leaves,
                node,
                &entries[i..j],
                K::ROOT_BITS,
                inherited,
            );
            i = j;
        }
    }
    Repr::Table {
        root,
        nodes,
        leaves,
    }
}

/// Build `nodes[at]` covering the subtree rooted `depth` bits deep, from
/// the sorted entries strictly below `depth`. `inherited` is the best match
/// covering the whole subtree from above (leaf-pushing input).
fn build_node<K: Bits>(
    nodes: &mut Vec<MbNode>,
    leaves: &mut Vec<u32>,
    at: usize,
    entries: &[(K, u8, u32)],
    depth: u8,
    inherited: u32,
) {
    let mut depth = depth;
    let mut inherited = inherited;
    let mut entries = entries;
    // Path compression: every entry below this node agrees on the bit run
    // [depth, shared), where `shared` is the keys' common prefix capped at
    // the shallowest prefix length (bits past an entry's plen are padding,
    // not prefix). Nothing is painted inside the run, so a diverging
    // address resolves to the inherited cover — one verified compare
    // replaces what would otherwise be a chain of single-child stride
    // levels. `miss` keeps the pre-absorption cover for exactly that case.
    let miss = inherited;
    let (first, last) = (entries[0].0, entries[entries.len() - 1].0);
    let min_plen = entries.iter().map(|e| e.1).min().unwrap_or(K::WIDTH);
    let shared = first.common_prefix_len(last).min(min_plen);
    let skip = if shared > depth {
        // `skip_key` holds ≤ 64 bits; longer runs chain a second skip node.
        (shared - depth).min(64)
    } else {
        0
    };
    let skip_key = if skip > 0 {
        first.bits_at(depth, skip)
    } else {
        0
    };
    depth += skip;
    // A prefix ending exactly at the compressed depth covers the whole
    // remaining subtree: absorb it as the new inherited (leaf-pushed) cover.
    while let Some((&(_, plen, id), rest)) = entries.split_first() {
        if plen > depth {
            break;
        }
        inherited = id;
        entries = rest;
    }
    let stride = (K::WIDTH - depth).min(STRIDE);
    let nchunks = 1usize << stride;
    // Best match per chunk after painting this level's prefixes over the
    // inherited cover (sorted order ⇒ plain overwrites are deepest-wins).
    let mut best = [RES_NONE; 64];
    best[..nchunks].fill(inherited);
    // Deep entries grouped by chunk: `(chunk, start, end)` into `entries`.
    let mut groups: Vec<(usize, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let (key, plen, id) = entries[i];
        debug_assert!(plen > depth);
        if plen <= depth + stride {
            let first = key.chunk(depth, stride);
            let count = 1usize << (depth + stride - plen);
            best[first..first + count].fill(id);
            i += 1;
        } else {
            let chunk = key.chunk(depth, stride);
            let mut j = i + 1;
            while j < entries.len()
                && entries[j].1 > depth + stride
                && entries[j].0.chunk(depth, stride) == chunk
            {
                j += 1;
            }
            groups.push((chunk, i, j));
            i = j;
        }
    }
    let mut vector = 0u64;
    for &(chunk, ..) in &groups {
        vector |= 1u64 << chunk;
    }
    // Children of one node are contiguous — reserve the block, then recurse.
    let base_children = nodes.len() as u32;
    nodes.resize(nodes.len() + groups.len(), MbNode::default());
    // Run-length collapse the leaf chunks: a bit in `leafvec` per run start.
    let base_leaves = leaves.len() as u32;
    let mut leafvec = 0u64;
    let mut prev: Option<u32> = None;
    for (chunk, &id) in best[..nchunks].iter().enumerate() {
        if vector >> chunk & 1 == 1 {
            prev = None; // a child interrupts the run
            continue;
        }
        if prev != Some(id) {
            leafvec |= 1u64 << chunk;
            leaves.push(id);
            prev = Some(id);
        }
    }
    let mut node = MbNode {
        vector,
        leafvec,
        skip_key,
        base_children,
        base_leaves,
        miss,
        skip,
    };
    if vector == 0 && leaves.len() == base_leaves as usize + 1 {
        // Uniform subtree — a single leaf run and no children. Encode the
        // result id inline (leafvec = 0, id in base_leaves) so lookups skip
        // the leaf-array load; regular nodes can never present this bitmap
        // pair (an all-leaf node always sets a run-start bit).
        node.leafvec = 0;
        node.base_leaves = leaves.pop().expect("single run just pushed");
    }
    nodes[at] = node;
    for (child, &(chunk, start, end)) in groups.iter().enumerate() {
        build_node(
            nodes,
            leaves,
            base_children as usize + child,
            &entries[start..end],
            depth + stride,
            best[chunk],
        );
    }
}

/// Frozen multibit LPM table for IPv4, compiled with [`Lpm4::freeze`](crate::Lpm4::freeze).
#[derive(Debug, Clone)]
pub struct Frozen4<V> {
    inner: FrozenLpm<u32, V>,
}

impl<V> Frozen4<V> {
    pub(crate) fn new(inner: FrozenLpm<u32, V>) -> Frozen4<V> {
        Frozen4 { inner }
    }

    /// Most specific covering prefix for `addr` (identical to the source
    /// [`Lpm4`](crate::Lpm4)'s answer at freeze time).
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(Prefix4, &V)> {
        self.inner
            .longest_match(crate::v4_to_u32(addr))
            .map(|(len, v)| (Prefix4::new(addr, len), v))
    }

    /// Batched [`Frozen4::longest_match`] preserving input order (memo +
    /// interleaved prefetch walks).
    pub fn longest_match_many(&self, addrs: &[Ipv4Addr]) -> Vec<Option<(Prefix4, &V)>> {
        let keys: Vec<u32> = addrs.iter().map(|&a| crate::v4_to_u32(a)).collect();
        self.inner
            .longest_match_many(&keys)
            .into_iter()
            .zip(addrs)
            .map(|(r, &a)| r.map(|(len, v)| (Prefix4::new(a, len), v)))
            .collect()
    }

    /// Batched value-only lookup (see [`FrozenLpm::values_many`]).
    pub fn values_many(&self, addrs: &[Ipv4Addr]) -> Vec<Option<&V>> {
        let keys: Vec<u32> = addrs.iter().map(|&a| crate::v4_to_u32(a)).collect();
        self.inner.values_many(&keys)
    }

    /// Number of prefixes captured at freeze time.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no prefixes were captured.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Flattened multibit nodes (see [`FrozenLpm::node_count`]).
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// Heap footprint in bytes (see [`FrozenLpm::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

/// Frozen multibit LPM table for IPv6, compiled with [`Lpm6::freeze`](crate::Lpm6::freeze).
#[derive(Debug, Clone)]
pub struct Frozen6<V> {
    inner: FrozenLpm<u128, V>,
}

impl<V> Frozen6<V> {
    pub(crate) fn new(inner: FrozenLpm<u128, V>) -> Frozen6<V> {
        Frozen6 { inner }
    }

    /// Most specific covering prefix for `addr` (identical to the source
    /// [`Lpm6`](crate::Lpm6)'s answer at freeze time).
    pub fn longest_match(&self, addr: Ipv6Addr) -> Option<(Prefix6, &V)> {
        self.inner
            .longest_match(crate::v6_to_u128(addr))
            .map(|(len, v)| (Prefix6::new(addr, len), v))
    }

    /// Batched [`Frozen6::longest_match`] preserving input order (memo +
    /// interleaved prefetch walks).
    pub fn longest_match_many(&self, addrs: &[Ipv6Addr]) -> Vec<Option<(Prefix6, &V)>> {
        let keys: Vec<u128> = addrs.iter().map(|&a| crate::v6_to_u128(a)).collect();
        self.inner
            .longest_match_many(&keys)
            .into_iter()
            .zip(addrs)
            .map(|(r, &a)| r.map(|(len, v)| (Prefix6::new(a, len), v)))
            .collect()
    }

    /// Batched value-only lookup (see [`FrozenLpm::values_many`]).
    pub fn values_many(&self, addrs: &[Ipv6Addr]) -> Vec<Option<&V>> {
        let keys: Vec<u128> = addrs.iter().map(|&a| crate::v6_to_u128(a)).collect();
        self.inner.values_many(&keys)
    }

    /// Number of prefixes captured at freeze time.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no prefixes were captured.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Flattened multibit nodes (see [`FrozenLpm::node_count`]).
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// Heap footprint in bytes (see [`FrozenLpm::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frozen(entries: &[(u32, u8, u32)]) -> (LpmTrie<u32, u32>, FrozenLpm<u32, u32>) {
        let mut trie: LpmTrie<u32, u32> = LpmTrie::new();
        for &(key, plen, value) in entries {
            trie.insert(key, plen, value);
        }
        let frozen = FrozenLpm::from_trie(&trie);
        (trie, frozen)
    }

    /// Enough distinct /16 anchors to push the trie (and the frozen table)
    /// out of small/linear mode.
    fn anchors() -> Vec<(u32, u8, u32)> {
        (0..16u32)
            .map(|i| (0xb000_0000 + (i << 16), 16, 900 + i))
            .collect()
    }

    #[test]
    fn frozen_matches_trie_basics() {
        let mut entries = anchors();
        entries.extend([
            (0, 0, 1),            // default route
            (0x0a00_0000, 8, 2),  // short prefix
            (0x0a14_0000, 16, 3), // exactly ROOT_BITS
            (0x0a14_8000, 17, 4), // one past the root stride
            (0x0a14_8080, 26, 5), // mid-stride
            (0xc0a8_0101, 32, 6), // host route
        ]);
        let (trie, frozen) = frozen(&entries);
        assert_eq!(frozen.len(), trie.len());
        for addr in [
            0u32,
            0x0a00_0001,
            0x0a14_0001,
            0x0a14_8001,
            0x0a14_8081,
            0x0a14_80ff,
            0xc0a8_0101,
            0xc0a8_0102,
            0xffff_ffff,
            0xb003_1234,
        ] {
            assert_eq!(
                frozen.longest_match(addr),
                trie.longest_match(addr),
                "addr {addr:#010x}"
            );
        }
    }

    #[test]
    fn no_default_route_misses() {
        let mut entries = anchors();
        entries.push((0x0a14_8000, 26, 7));
        let (trie, frozen) = frozen(&entries);
        assert_eq!(trie.longest_match(0x0a14_8100), None);
        assert_eq!(frozen.longest_match(0x0a14_8100), None);
        assert_eq!(frozen.longest_match(0x0a14_8001), Some((26, &7)));
    }

    #[test]
    fn small_tables_stay_linear() {
        let (trie, frozen) = frozen(&[(0x0a00_0000, 8, 1), (0, 0, 2)]);
        assert_eq!(frozen.node_count(), 0, "small repr allocates no nodes");
        for addr in [0x0a01_0101u32, 0x0b00_0000, 0] {
            assert_eq!(frozen.longest_match(addr), trie.longest_match(addr));
        }
    }

    #[test]
    fn batched_matches_scalar_on_dup_and_unique_batches() {
        let mut entries = anchors();
        for i in 0..512u32 {
            // Scattered /24s: multibit nodes several levels deep.
            entries.push((0x1000_0000 + (i * 0x0002_0100), 24, i));
        }
        entries.push((0x1000_0000, 8, 7777));
        let (trie, frozen) = frozen(&entries);
        let mut rng = 0x243f_6a88_85a3_08d3u64;
        let mut addrs: Vec<u32> = (0..4096)
            .map(|_| {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                0x1000_0000 + ((rng >> 33) as u32 % 0x0400_0000)
            })
            .collect();
        // Unique-heavy batch (bypass path), then a duplicate-heavy one.
        for batch in [addrs.clone(), {
            addrs.truncate(64);
            addrs.iter().cycle().take(4096).copied().collect()
        }] {
            let got = frozen.longest_match_many(&batch);
            for (i, &addr) in batch.iter().enumerate() {
                assert_eq!(got[i], trie.longest_match(addr), "addr {addr:#010x}");
            }
        }
    }

    #[test]
    fn v6_deep_prefixes_match() {
        let mut trie: LpmTrie<u128, u32> = LpmTrie::new();
        for i in 0..64u128 {
            trie.insert(0x2001_0db8 << 96 | i << 80, 48, i as u32);
            trie.insert(
                0x2001_0db8 << 96 | i << 80 | 0xabcd << 64,
                64,
                1000 + i as u32,
            );
        }
        trie.insert(0x2000 << 112, 3, 424242); // short v6 prefix
        trie.insert(0, 0, 1);
        let frozen = FrozenLpm::from_trie(&trie);
        let mut rng = 0x1337u64;
        for _ in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (rng >> 20) as u128 % 64;
            let tail = (rng as u128) << 32 | rng as u128;
            for addr in [
                0x2001_0db8 << 96 | i << 80 | tail & ((1 << 80) - 1),
                0x2001_0db8 << 96 | i << 80 | 0xabcd << 64 | tail & ((1 << 64) - 1),
                tail,
            ] {
                assert_eq!(frozen.longest_match(addr), trie.longest_match(addr));
            }
        }
    }

    #[test]
    fn footprint_is_reported() {
        let entries: Vec<(u32, u8, u32)> = (0..1000u32).map(|i| (i << 14, 24, i)).collect();
        let (_, frozen) = frozen(&entries);
        assert!(frozen.node_count() > 0);
        // Root table alone is 256 KiB.
        assert!(frozen.heap_bytes() > 1 << 18, "{}", frozen.heap_bytes());
    }
}
