//! Interned symbol tables: `u32` symbols for hash-heavy hot paths.
//!
//! The suite's per-record attribution paths used to hash full keys on every
//! flow record: `AsAgg` hashed sparse `AsId`s into a `HashMap<AsId,
//! ScopeCell>`, domain attribution hashed whole `Arc<str>` names. At the
//! paper's 100k-AS scale those maps dominate the aggregation cost. A
//! [`SymbolTable`] assigns each distinct key a dense [`Sym`] (a `u32`, in
//! first-interned order), after which per-key state lives in a [`SymVec`] —
//! a plain vector indexed by symbol, with no hashing, no bucket chasing and
//! no rehash-on-growth on the hot path.
//!
//! Two properties the rest of the suite relies on:
//!
//! * **Determinism** — symbols are assigned in interning order, and every
//!   iterator ([`SymbolTable::iter`], [`SymVec::iter`]) walks in symbol
//!   order. Nothing here ever exposes hash-map iteration order, so interned
//!   aggregates merge and export byte-identically across runs and thread
//!   counts.
//! * **Cheap lookups** — the internal key→symbol map uses [`FxHasher`], a
//!   multiply-xor hasher (the rustc-hash construction) that is an order of
//!   magnitude cheaper than the default SipHash for the small fixed-width
//!   keys (`u32` AS numbers, short names) interning deals in. The table is
//!   *not* DoS-hardened — keys here come from the deterministic generator,
//!   never from an adversary.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A dense interned symbol: an index into the [`SymbolTable`] that issued
/// it (and into any [`SymVec`] keyed by that table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The dense index this symbol maps to.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a symbol from a dense index (caller asserts it came from
    /// the matching table).
    pub fn from_index(index: usize) -> Sym {
        Sym(u32::try_from(index).expect("symbol space is u32"))
    }
}

/// The rustc-hash (FxHash) construction: fold 8-byte chunks with a
/// multiply-rotate. Not cryptographic, not DoS-resistant — just fast on the
/// short deterministic keys symbol tables see.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// An interning table: distinct values of `T` get dense `u32` symbols in
/// first-seen order.
///
/// ```
/// use iputil::sym::SymbolTable;
/// let mut t: SymbolTable<u32> = SymbolTable::new();
/// let a = t.intern(&65001);
/// let b = t.intern(&65002);
/// assert_eq!(t.intern(&65001), a);
/// assert_eq!(a.index(), 0);
/// assert_eq!(b.index(), 1);
/// assert_eq!(t.resolve(b), &65002);
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SymbolTable<T> {
    map: HashMap<T, Sym, FxBuild>,
    items: Vec<T>,
}

impl<T> Default for SymbolTable<T> {
    fn default() -> Self {
        SymbolTable {
            map: HashMap::default(),
            items: Vec::new(),
        }
    }
}

impl<T: Hash + Eq + Clone> SymbolTable<T> {
    /// An empty table.
    pub fn new() -> SymbolTable<T> {
        SymbolTable {
            map: HashMap::default(),
            items: Vec::new(),
        }
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Intern a value: returns its existing symbol, or assigns the next
    /// dense one (cloning the value into the table only when new).
    pub fn intern(&mut self, value: &T) -> Sym {
        self.intern_full(value).0
    }

    /// [`SymbolTable::intern`] plus whether the value was newly interned —
    /// the interned replacement for `HashSet::insert` dedup.
    pub fn intern_full(&mut self, value: &T) -> (Sym, bool) {
        if let Some(&sym) = self.map.get(value) {
            return (sym, false);
        }
        let sym = Sym::from_index(self.items.len());
        self.items.push(value.clone());
        self.map.insert(value.clone(), sym);
        (sym, true)
    }

    /// The symbol of an already-interned value.
    pub fn lookup<Q>(&self, value: &Q) -> Option<Sym>
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(value).copied()
    }

    /// The value behind a symbol.
    ///
    /// # Panics
    /// Panics when the symbol did not come from this table.
    pub fn resolve(&self, sym: Sym) -> &T {
        &self.items[sym.index()]
    }

    /// All interned values, in symbol (first-seen) order.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Iterate `(symbol, value)` in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (Sym::from_index(i), v))
    }
}

/// A dense symbol-indexed map: a `Vec<V>` that grows on demand, the
/// interned replacement for `HashMap<K, V>` once keys are symbols.
///
/// ```
/// use iputil::sym::{Sym, SymVec};
/// let mut v: SymVec<u64> = SymVec::new();
/// *v.get_mut_or_default(Sym::from_index(2)) += 10;
/// assert_eq!(v.get(Sym::from_index(2)), Some(&10));
/// assert_eq!(v.get(Sym::from_index(7)), None);
/// assert_eq!(v.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymVec<V> {
    items: Vec<V>,
}

impl<V> SymVec<V> {
    /// An empty map.
    pub fn new() -> SymVec<V> {
        SymVec { items: Vec::new() }
    }

    /// A map pre-sized for `n` symbols (avoids growth on hot paths when the
    /// symbol universe — e.g. a registry's AS count — is known up front).
    pub fn with_capacity(n: usize) -> SymVec<V> {
        SymVec {
            items: Vec::with_capacity(n),
        }
    }

    /// Number of slots (one past the highest symbol ever touched).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no slot was ever touched.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The value at a symbol, when its slot exists.
    pub fn get(&self, sym: Sym) -> Option<&V> {
        self.items.get(sym.index())
    }

    /// Iterate `(symbol, value)` over every slot, in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &V)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (Sym::from_index(i), v))
    }
}

impl<V: Default> SymVec<V> {
    /// Mutable access to a symbol's slot, default-filling up to it — the
    /// interned replacement for `HashMap::entry(k).or_default()`.
    pub fn get_mut_or_default(&mut self, sym: Sym) -> &mut V {
        let idx = sym.index();
        if idx >= self.items.len() {
            self.items.resize_with(idx + 1, V::default);
        }
        &mut self.items[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut t: SymbolTable<String> = SymbolTable::new();
        let a = t.intern(&"alpha".to_string());
        let b = t.intern(&"beta".to_string());
        let a2 = t.intern(&"alpha".to_string());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!((a.index(), b.index()), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.lookup("beta"), Some(b));
        assert_eq!(t.lookup("gamma"), None);
    }

    #[test]
    fn intern_full_reports_novelty() {
        let mut t: SymbolTable<u32> = SymbolTable::new();
        assert!(t.intern_full(&7).1);
        assert!(!t.intern_full(&7).1);
        assert!(t.intern_full(&8).1);
    }

    #[test]
    fn iteration_is_symbol_ordered() {
        let mut t: SymbolTable<u32> = SymbolTable::new();
        for v in [30u32, 10, 20, 10, 30, 40] {
            t.intern(&v);
        }
        let order: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec![30, 10, 20, 40]);
        assert_eq!(t.as_slice(), &[30, 10, 20, 40]);
    }

    #[test]
    fn symvec_grows_on_demand() {
        let mut v: SymVec<u32> = SymVec::new();
        assert!(v.is_empty());
        *v.get_mut_or_default(Sym::from_index(3)) = 9;
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(Sym::from_index(0)), Some(&0));
        assert_eq!(v.get(Sym::from_index(3)), Some(&9));
        assert_eq!(v.get(Sym::from_index(4)), None);
        let pairs: Vec<(usize, u32)> = v.iter().map(|(s, x)| (s.index(), *x)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 0), (2, 0), (3, 9)]);
    }

    #[test]
    fn fx_hasher_distinguishes_small_keys() {
        // Sanity, not quality: distinct u32 keys hash apart.
        let hash = |v: u32| {
            let mut h = FxHasher::default();
            v.hash(&mut h);
            h.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u32 {
            assert!(seen.insert(hash(v)), "collision at {v}");
        }
    }
}
