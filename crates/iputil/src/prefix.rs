//! CIDR prefixes for IPv4 and IPv6.
//!
//! A prefix is stored in canonical form: all bits beyond the prefix length
//! are zero. Construction via [`Prefix4::new`] / [`Prefix6::new`]
//! canonicalizes automatically; parsing (`"203.0.113.0/24".parse()`) rejects
//! nothing but syntax errors and over-long lengths.

use crate::{u128_to_v6, u32_to_v4, v4_to_u32, v6_to_u128};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Error returned when parsing a prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// The string did not contain exactly one `/`.
    MissingSlash,
    /// The address part did not parse.
    BadAddress,
    /// The length part did not parse as an integer.
    BadLength,
    /// The length exceeded the family maximum (32 or 128).
    LengthOutOfRange {
        /// Parsed length.
        len: u8,
        /// Maximum allowed for the family.
        max: u8,
    },
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::MissingSlash => write!(f, "prefix must contain a single '/'"),
            ParsePrefixError::BadAddress => write!(f, "invalid address part"),
            ParsePrefixError::BadLength => write!(f, "invalid length part"),
            ParsePrefixError::LengthOutOfRange { len, max } => {
                write!(f, "prefix length {len} exceeds family maximum {max}")
            }
        }
    }
}

impl std::error::Error for ParsePrefixError {}

/// An IPv4 CIDR prefix in canonical form (host bits zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix4 {
    bits: u32,
    len: u8,
}

impl Prefix4 {
    /// Build a prefix from an address and length, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Prefix4 {
        assert!(len <= 32, "IPv4 prefix length {len} > 32");
        Prefix4 {
            bits: v4_to_u32(addr) & mask32(len),
            len,
        }
    }

    /// The canonical network address.
    pub fn network(self) -> Ipv4Addr {
        u32_to_v4(self.bits)
    }

    /// The raw network bits (big-endian u32).
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Prefix length in bits (a CIDR length, not a container size).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True for the zero-length default route `0.0.0.0/0`.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain `addr`?
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        v4_to_u32(addr) & mask32(self.len) == self.bits
    }

    /// Does this prefix fully cover `other` (i.e. `other` is equal or more
    /// specific)?
    pub fn covers(self, other: Prefix4) -> bool {
        self.len <= other.len && other.bits & mask32(self.len) == self.bits
    }

    /// Number of host addresses in the prefix (saturating at `u64::MAX`).
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// The `index`-th subnet of length `new_len` inside this prefix.
    ///
    /// Returns `None` if `new_len` is shorter than the current length or
    /// `index` does not fit in the available bits.
    pub fn subnet(self, new_len: u8, index: u64) -> Option<Prefix4> {
        if new_len < self.len || new_len > 32 {
            return None;
        }
        let extra = new_len - self.len;
        if extra < 64 && index >= (1u64 << extra) {
            return None;
        }
        let shifted = if new_len == 0 {
            0
        } else {
            (index as u32) << (32 - new_len as u32)
        };
        Some(Prefix4 {
            bits: self.bits | shifted,
            len: new_len,
        })
    }

    /// The `index`-th host address inside this prefix, or `None` if out of
    /// range.
    pub fn host(self, index: u64) -> Option<Ipv4Addr> {
        if index >= self.size() {
            return None;
        }
        Some(u32_to_v4(self.bits | index as u32))
    }
}

impl fmt::Display for Prefix4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix4 {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = split_cidr(s)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| ParsePrefixError::BadAddress)?;
        if len > 32 {
            return Err(ParsePrefixError::LengthOutOfRange { len, max: 32 });
        }
        Ok(Prefix4::new(addr, len))
    }
}

/// An IPv6 CIDR prefix in canonical form (host bits zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix6 {
    bits: u128,
    len: u8,
}

impl Prefix6 {
    /// Build a prefix from an address and length, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Prefix6 {
        assert!(len <= 128, "IPv6 prefix length {len} > 128");
        Prefix6 {
            bits: v6_to_u128(addr) & mask128(len),
            len,
        }
    }

    /// The canonical network address.
    pub fn network(self) -> Ipv6Addr {
        u128_to_v6(self.bits)
    }

    /// The raw network bits (big-endian u128).
    pub fn bits(self) -> u128 {
        self.bits
    }

    /// Prefix length in bits (a CIDR length, not a container size).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// True for the zero-length default route `::/0`.
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Does this prefix contain `addr`?
    pub fn contains(self, addr: Ipv6Addr) -> bool {
        v6_to_u128(addr) & mask128(self.len) == self.bits
    }

    /// Does this prefix fully cover `other`?
    pub fn covers(self, other: Prefix6) -> bool {
        self.len <= other.len && other.bits & mask128(self.len) == self.bits
    }

    /// The `index`-th subnet of length `new_len` inside this prefix.
    pub fn subnet(self, new_len: u8, index: u128) -> Option<Prefix6> {
        if new_len < self.len || new_len > 128 {
            return None;
        }
        let extra = new_len - self.len;
        if extra < 128 && index >= (1u128 << extra) {
            return None;
        }
        let shifted = if new_len == 0 {
            0
        } else {
            index << (128 - new_len as u32)
        };
        Some(Prefix6 {
            bits: self.bits | shifted,
            len: new_len,
        })
    }

    /// The `index`-th host address inside this prefix, or `None` if out of
    /// range (ranges larger than 2^64 are treated as unbounded for `index`
    /// purposes).
    pub fn host(self, index: u128) -> Option<Ipv6Addr> {
        let width = 128 - self.len as u32;
        if width < 128 && index >= (1u128 << width) {
            return None;
        }
        Some(u128_to_v6(self.bits | index))
    }
}

impl fmt::Display for Prefix6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix6 {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = split_cidr(s)?;
        let addr: Ipv6Addr = addr.parse().map_err(|_| ParsePrefixError::BadAddress)?;
        if len > 128 {
            return Err(ParsePrefixError::LengthOutOfRange { len, max: 128 });
        }
        Ok(Prefix6::new(addr, len))
    }
}

/// A prefix of either family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prefix {
    /// IPv4 prefix.
    V4(Prefix4),
    /// IPv6 prefix.
    V6(Prefix6),
}

impl Prefix {
    /// Family of this prefix.
    pub fn family(self) -> crate::Family {
        match self {
            Prefix::V4(_) => crate::Family::V4,
            Prefix::V6(_) => crate::Family::V6,
        }
    }

    /// Prefix length in bits (a CIDR length, not a container size).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        match self {
            Prefix::V4(p) => p.len(),
            Prefix::V6(p) => p.len(),
        }
    }

    /// True for zero-length default routes.
    pub fn is_default(self) -> bool {
        self.len() == 0
    }

    /// Does this prefix contain `addr`? Addresses of the other family are
    /// never contained.
    pub fn contains(self, addr: IpAddr) -> bool {
        match (self, addr) {
            (Prefix::V4(p), IpAddr::V4(a)) => p.contains(a),
            (Prefix::V6(p), IpAddr::V6(a)) => p.contains(a),
            _ => false,
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => p.fmt(f),
            Prefix::V6(p) => p.fmt(f),
        }
    }
}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains(':') {
            s.parse::<Prefix6>().map(Prefix::V6)
        } else {
            s.parse::<Prefix4>().map(Prefix::V4)
        }
    }
}

impl From<Prefix4> for Prefix {
    fn from(p: Prefix4) -> Prefix {
        Prefix::V4(p)
    }
}

impl From<Prefix6> for Prefix {
    fn from(p: Prefix6) -> Prefix {
        Prefix::V6(p)
    }
}

/// 32-bit netmask for a prefix length (0..=32).
pub fn mask32(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

/// 128-bit netmask for a prefix length (0..=128).
pub fn mask128(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

fn split_cidr(s: &str) -> Result<(&str, u8), ParsePrefixError> {
    let mut it = s.splitn(2, '/');
    let addr = it.next().ok_or(ParsePrefixError::MissingSlash)?;
    let len = it.next().ok_or(ParsePrefixError::MissingSlash)?;
    let len: u8 = len.parse().map_err(|_| ParsePrefixError::BadLength)?;
    Ok((addr, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_host_bits() {
        let p = Prefix4::new(Ipv4Addr::new(203, 0, 113, 77), 24);
        assert_eq!(p.network(), Ipv4Addr::new(203, 0, 113, 0));
        assert_eq!(p.to_string(), "203.0.113.0/24");
    }

    #[test]
    fn parse_and_display_roundtrip_v4() {
        let p: Prefix4 = "10.32.0.0/11".parse().unwrap();
        assert_eq!(p.to_string(), "10.32.0.0/11");
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn parse_and_display_roundtrip_v6() {
        let p: Prefix6 = "2001:db8:40::/44".parse().unwrap();
        assert_eq!(p.len(), 44);
        assert!(p.contains("2001:db8:4f::1".parse().unwrap()));
        assert!(!p.contains("2001:db8:50::1".parse().unwrap()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            "10.0.0.0".parse::<Prefix4>(),
            Err(ParsePrefixError::MissingSlash)
        );
        assert_eq!(
            "10.0.0.0/33".parse::<Prefix4>(),
            Err(ParsePrefixError::LengthOutOfRange { len: 33, max: 32 })
        );
        assert_eq!(
            "bogus/8".parse::<Prefix4>(),
            Err(ParsePrefixError::BadAddress)
        );
        assert_eq!(
            "10.0.0.0/x".parse::<Prefix4>(),
            Err(ParsePrefixError::BadLength)
        );
        assert_eq!(
            "::/129".parse::<Prefix6>(),
            Err(ParsePrefixError::LengthOutOfRange { len: 129, max: 128 })
        );
    }

    #[test]
    fn contains_boundaries() {
        let p: Prefix4 = "192.0.2.0/24".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 0)));
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 0, 3, 0)));
        assert!(!p.contains(Ipv4Addr::new(192, 0, 1, 255)));
    }

    #[test]
    fn default_routes_contain_everything() {
        let d4: Prefix4 = "0.0.0.0/0".parse().unwrap();
        let d6: Prefix6 = "::/0".parse().unwrap();
        assert!(d4.is_default());
        assert!(d6.is_default());
        assert!(d4.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(d6.contains("ffff::1".parse().unwrap()));
    }

    #[test]
    fn covers_relation() {
        let big: Prefix4 = "10.0.0.0/8".parse().unwrap();
        let small: Prefix4 = "10.20.0.0/16".parse().unwrap();
        assert!(big.covers(small));
        assert!(!small.covers(big));
        assert!(big.covers(big));
        let other: Prefix4 = "11.0.0.0/8".parse().unwrap();
        assert!(!big.covers(other));
    }

    #[test]
    fn subnets_and_hosts_v4() {
        let p: Prefix4 = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.subnet(24, 0).unwrap().to_string(), "10.0.0.0/24");
        assert_eq!(p.subnet(24, 257).unwrap().to_string(), "10.1.1.0/24");
        assert!(p.subnet(24, (1 << 16) - 1).is_some());
        assert!(p.subnet(24, 1 << 16).is_none());
        assert!(p.subnet(4, 0).is_none(), "cannot widen a prefix");
        let s = p.subnet(24, 3).unwrap();
        assert_eq!(s.host(7).unwrap(), Ipv4Addr::new(10, 0, 3, 7));
        assert!(s.host(256).is_none());
    }

    #[test]
    fn subnets_and_hosts_v6() {
        let p: Prefix6 = "2001:db8::/32".parse().unwrap();
        let s = p.subnet(48, 5).unwrap();
        assert_eq!(s.to_string(), "2001:db8:5::/48");
        let h = s.host(0x42).unwrap();
        assert_eq!(h, "2001:db8:5::42".parse::<Ipv6Addr>().unwrap());
        // /0 host indexing is unbounded.
        let all: Prefix6 = "::/0".parse().unwrap();
        assert!(all.host(u128::MAX).is_some());
    }

    #[test]
    fn size_of_prefixes() {
        assert_eq!("10.0.0.0/8".parse::<Prefix4>().unwrap().size(), 1 << 24);
        assert_eq!("10.0.0.0/32".parse::<Prefix4>().unwrap().size(), 1);
        assert_eq!("0.0.0.0/0".parse::<Prefix4>().unwrap().size(), 1 << 32);
    }

    #[test]
    fn mixed_prefix_enum() {
        let p: Prefix = "198.51.100.0/24".parse().unwrap();
        assert_eq!(p.family(), crate::Family::V4);
        assert!(p.contains("198.51.100.9".parse().unwrap()));
        assert!(!p.contains("2001:db8::1".parse().unwrap()));
        let q: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(q.family(), crate::Family::V6);
        assert_eq!(q.len(), 32);
    }

    #[test]
    fn masks() {
        assert_eq!(mask32(0), 0);
        assert_eq!(mask32(32), u32::MAX);
        assert_eq!(mask32(24), 0xffff_ff00);
        assert_eq!(mask128(0), 0);
        assert_eq!(mask128(128), u128::MAX);
        assert_eq!(mask128(64), !0u128 << 64);
    }
}
