//! Arena-backed binary tries with longest-prefix-match lookup.
//!
//! [`LpmTrie`] is generic over the key width through the [`Bits`] trait
//! (implemented for `u32` and `u128`), so the same code path serves IPv4 and
//! IPv6 routing tables. Nodes live in a flat `Vec` arena; child pointers are
//! `u32` indices, which keeps the structure compact and cache-friendly —
//! important because the cloud-attribution pipeline performs one lookup per
//! observed FQDN (hundreds of thousands per crawl epoch).

use crate::prefix::{Prefix4, Prefix6};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Key types usable in an [`LpmTrie`]: fixed-width big-endian bit strings.
pub trait Bits: Copy + Eq + std::fmt::Debug {
    /// Width of the key in bits (32 for IPv4, 128 for IPv6).
    const WIDTH: u8;

    /// The all-zero key.
    fn zero() -> Self;

    /// The `i`-th bit counted from the most-significant end (0-based).
    fn bit(self, i: u8) -> bool;

    /// Return the key with bit `i` (from the most-significant end) set.
    fn with_bit(self, i: u8) -> Self;

    /// Zero out everything past the first `len` bits.
    fn truncate(self, len: u8) -> Self;
}

impl Bits for u32 {
    const WIDTH: u8 = 32;

    fn zero() -> u32 {
        0
    }

    fn bit(self, i: u8) -> bool {
        debug_assert!(i < 32);
        self >> (31 - i) & 1 == 1
    }

    fn with_bit(self, i: u8) -> u32 {
        self | 1u32 << (31 - i)
    }

    fn truncate(self, len: u8) -> u32 {
        self & crate::prefix::mask32(len)
    }
}

impl Bits for u128 {
    const WIDTH: u8 = 128;

    fn zero() -> u128 {
        0
    }

    fn bit(self, i: u8) -> bool {
        debug_assert!(i < 128);
        self >> (127 - i) & 1 == 1
    }

    fn with_bit(self, i: u8) -> u128 {
        self | 1u128 << (127 - i)
    }

    fn truncate(self, len: u8) -> u128 {
        self & crate::prefix::mask128(len)
    }
}

const NO_CHILD: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<V> {
    children: [u32; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn new() -> Node<V> {
        Node {
            children: [NO_CHILD, NO_CHILD],
            value: None,
        }
    }
}

/// A binary trie mapping prefixes (key bits + length) to values, supporting
/// exact-match and longest-prefix-match queries.
///
/// ```
/// use iputil::trie::LpmTrie;
/// let mut t: LpmTrie<u32, &str> = LpmTrie::new();
/// t.insert(0x0a000000, 8, "10/8");          // 10.0.0.0/8
/// t.insert(0x0a140000, 16, "10.20/16");     // 10.20.0.0/16
/// assert_eq!(t.longest_match(0x0a140101), Some((16, &"10.20/16")));
/// assert_eq!(t.longest_match(0x0a010101), Some((8, &"10/8")));
/// assert_eq!(t.longest_match(0x0b000000), None);
/// ```
#[derive(Debug, Clone)]
pub struct LpmTrie<K: Bits, V> {
    nodes: Vec<Node<V>>,
    len: usize,
    _key: std::marker::PhantomData<K>,
}

impl<K: Bits, V> Default for LpmTrie<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Bits, V> LpmTrie<K, V> {
    /// Create an empty trie.
    pub fn new() -> LpmTrie<K, V> {
        LpmTrie {
            nodes: vec![Node::new()],
            len: 0,
            _key: std::marker::PhantomData,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a prefix (key truncated to `plen` bits) with a value.
    /// Returns the previous value if the exact prefix was already present.
    ///
    /// # Panics
    /// Panics if `plen > K::WIDTH`.
    pub fn insert(&mut self, key: K, plen: u8, value: V) -> Option<V> {
        assert!(plen <= K::WIDTH, "prefix length out of range");
        let key = key.truncate(plen);
        let mut node = 0usize;
        for i in 0..plen {
            let b = key.bit(i) as usize;
            let child = self.nodes[node].children[b];
            node = if child == NO_CHILD {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[node].children[b] = idx;
                idx as usize
            } else {
                child as usize
            };
        }
        let prev = self.nodes[node].value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Exact-match lookup of a stored prefix.
    pub fn get(&self, key: K, plen: u8) -> Option<&V> {
        let node = self.walk_exact(key, plen)?;
        self.nodes[node].value.as_ref()
    }

    /// Mutable exact-match lookup.
    pub fn get_mut(&mut self, key: K, plen: u8) -> Option<&mut V> {
        let node = self.walk_exact(key, plen)?;
        self.nodes[node].value.as_mut()
    }

    /// Remove an exact prefix, returning its value. Interior nodes are left
    /// in place (the trie is built once and queried many times in this
    /// workload, so we do not bother compacting).
    pub fn remove(&mut self, key: K, plen: u8) -> Option<V> {
        let node = self.walk_exact(key, plen)?;
        let v = self.nodes[node].value.take();
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    /// Longest-prefix-match: the most specific stored prefix containing
    /// `addr`, returned as `(prefix_len, &value)`.
    pub fn longest_match(&self, addr: K) -> Option<(u8, &V)> {
        let mut best: Option<(u8, &V)> = None;
        let mut node = 0usize;
        if let Some(v) = self.nodes[node].value.as_ref() {
            best = Some((0, v));
        }
        for i in 0..K::WIDTH {
            let b = addr.bit(i) as usize;
            let child = self.nodes[node].children[b];
            if child == NO_CHILD {
                break;
            }
            node = child as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some((i + 1, v));
            }
        }
        best
    }

    /// Visit every stored `(key, plen, &value)` in depth-first (lexicographic)
    /// order.
    pub fn for_each<F: FnMut(K, u8, &V)>(&self, mut f: F) {
        // Iterative DFS carrying the reconstructed key bits.
        let mut stack: Vec<(usize, K, u8)> = vec![(0, K::zero(), 0)];
        while let Some((node, key, depth)) = stack.pop() {
            if let Some(v) = self.nodes[node].value.as_ref() {
                f(key, depth, v);
            }
            // Push right child first so the left (0-bit) child is visited first.
            for b in [1usize, 0] {
                let child = self.nodes[node].children[b];
                if child != NO_CHILD {
                    let k = if b == 1 { key.with_bit(depth) } else { key };
                    stack.push((child as usize, k, depth + 1));
                }
            }
        }
    }

    /// Collect all stored prefixes as `(key, plen)` pairs.
    pub fn keys(&self) -> Vec<(K, u8)> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|k, l, _| out.push((k, l)));
        out
    }

    fn walk_exact(&self, key: K, plen: u8) -> Option<usize> {
        if plen > K::WIDTH {
            return None;
        }
        let key = key.truncate(plen);
        let mut node = 0usize;
        for i in 0..plen {
            let b = key.bit(i) as usize;
            let child = self.nodes[node].children[b];
            if child == NO_CHILD {
                return None;
            }
            node = child as usize;
        }
        Some(node)
    }
}

/// Longest-prefix-match table for IPv4 built on [`LpmTrie`].
#[derive(Debug, Clone)]
pub struct Lpm4<V> {
    trie: LpmTrie<u32, V>,
}

impl<V> Default for Lpm4<V> {
    fn default() -> Self {
        Lpm4::new()
    }
}

impl<V> Lpm4<V> {
    /// Create an empty table.
    pub fn new() -> Lpm4<V> {
        Lpm4 {
            trie: LpmTrie::new(),
        }
    }

    /// Insert a prefix, returning any previous value for the exact prefix.
    pub fn insert(&mut self, prefix: Prefix4, value: V) -> Option<V> {
        self.trie.insert(prefix.bits(), prefix.len(), value)
    }

    /// Most specific covering prefix for `addr`.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(Prefix4, &V)> {
        self.trie
            .longest_match(crate::v4_to_u32(addr))
            .map(|(len, v)| (Prefix4::new(addr, len), v))
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix4) -> Option<&V> {
        self.trie.get(prefix.bits(), prefix.len())
    }

    /// Remove an exact prefix.
    pub fn remove(&mut self, prefix: Prefix4) -> Option<V> {
        self.trie.remove(prefix.bits(), prefix.len())
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }
}

/// Longest-prefix-match table for IPv6 built on [`LpmTrie`].
#[derive(Debug, Clone)]
pub struct Lpm6<V> {
    trie: LpmTrie<u128, V>,
}

impl<V> Default for Lpm6<V> {
    fn default() -> Self {
        Lpm6::new()
    }
}

impl<V> Lpm6<V> {
    /// Create an empty table.
    pub fn new() -> Lpm6<V> {
        Lpm6 {
            trie: LpmTrie::new(),
        }
    }

    /// Insert a prefix, returning any previous value for the exact prefix.
    pub fn insert(&mut self, prefix: Prefix6, value: V) -> Option<V> {
        self.trie.insert(prefix.bits(), prefix.len(), value)
    }

    /// Most specific covering prefix for `addr`.
    pub fn longest_match(&self, addr: Ipv6Addr) -> Option<(Prefix6, &V)> {
        self.trie
            .longest_match(crate::v6_to_u128(addr))
            .map(|(len, v)| (Prefix6::new(addr, len), v))
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix6) -> Option<&V> {
        self.trie.get(prefix.bits(), prefix.len())
    }

    /// Remove an exact prefix.
    pub fn remove(&mut self, prefix: Prefix6) -> Option<V> {
        self.trie.remove(prefix.bits(), prefix.len())
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpm_basic() {
        let mut t: LpmTrie<u32, &str> = LpmTrie::new();
        assert!(t.is_empty());
        t.insert(0x0a00_0000, 8, "ten");
        t.insert(0x0a14_0000, 16, "ten-twenty");
        t.insert(0, 0, "default");
        assert_eq!(t.len(), 3);
        assert_eq!(t.longest_match(0x0a14_0505), Some((16, &"ten-twenty")));
        assert_eq!(t.longest_match(0x0a01_0101), Some((8, &"ten")));
        assert_eq!(t.longest_match(0xc0a8_0101), Some((0, &"default")));
    }

    #[test]
    fn lpm_no_default_misses() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0xc000_0200, 24, 1);
        assert_eq!(t.longest_match(0xc000_0300), None);
        assert_eq!(t.longest_match(0xc000_02ff), Some((24, &1)));
    }

    #[test]
    fn insert_replaces() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        assert_eq!(t.insert(0x0a00_0000, 8, 1), None);
        assert_eq!(t.insert(0x0a00_0000, 8, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0x0a00_0000, 8), Some(&2));
    }

    #[test]
    fn remove_works() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a00_0000, 8, 1);
        t.insert(0x0a14_0000, 16, 2);
        assert_eq!(t.remove(0x0a14_0000, 16), Some(2));
        assert_eq!(t.remove(0x0a14_0000, 16), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.longest_match(0x0a14_0101), Some((8, &1)));
    }

    #[test]
    fn key_is_truncated_on_insert() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a01_0203, 8, 9); // host bits ignored
        assert_eq!(t.get(0x0a00_0000, 8), Some(&9));
    }

    #[test]
    fn lpm4_wrapper() {
        let mut t: Lpm4<&str> = Lpm4::new();
        t.insert("10.0.0.0/8".parse().unwrap(), "big");
        t.insert("10.9.0.0/16".parse().unwrap(), "small");
        let (p, v) = t.longest_match("10.9.4.4".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.9.0.0/16");
        assert_eq!(*v, "small");
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove("10.9.0.0/16".parse().unwrap()), Some("small"));
        let (p, _) = t.longest_match("10.9.4.4".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn lpm6_wrapper() {
        let mut t: Lpm6<u32> = Lpm6::new();
        t.insert("2001:db8::/32".parse().unwrap(), 1);
        t.insert("2001:db8:ff::/48".parse().unwrap(), 2);
        let (p, v) = t
            .longest_match("2001:db8:ff::1".parse().unwrap())
            .unwrap();
        assert_eq!(p.len(), 48);
        assert_eq!(*v, 2);
        assert!(t.longest_match("2002::1".parse().unwrap()).is_none());
    }

    #[test]
    fn full_length_host_routes() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0xc0a8_0101, 32, 7);
        assert_eq!(t.longest_match(0xc0a8_0101), Some((32, &7)));
        assert_eq!(t.longest_match(0xc0a8_0102), None);
        let mut t6: LpmTrie<u128, u8> = LpmTrie::new();
        let a = crate::v6_to_u128("2001:db8::1".parse().unwrap());
        t6.insert(a, 128, 9);
        assert_eq!(t6.longest_match(a), Some((128, &9)));
    }

    #[test]
    fn for_each_visits_everything_in_order() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a00_0000, 8, 1);
        t.insert(0x0a14_0000, 16, 2);
        t.insert(0x0b00_0000, 8, 3);
        t.insert(0, 0, 0);
        let keys = t.keys();
        assert_eq!(
            keys,
            vec![(0, 0), (0x0a00_0000, 8), (0x0a14_0000, 16), (0x0b00_0000, 8)]
        );
        let mut total = 0u32;
        t.for_each(|_, _, v| total += *v as u32);
        assert_eq!(total, 6);
    }

    #[test]
    fn bit_indexing() {
        assert!(0x8000_0000u32.bit(0));
        assert!(!0x8000_0000u32.bit(1));
        assert!(1u32.bit(31));
        assert!((1u128 << 127).bit(0));
        assert!(1u128.bit(127));
    }
}
