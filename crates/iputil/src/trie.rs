//! Path-compressed radix tries with a multibit root table and
//! longest-prefix-match lookup.
//!
//! # Design
//!
//! [`LpmTrie`] is the shared LPM engine behind the BGP RIB (`bgpsim::Rib`),
//! the cloud-attribution pipeline (`core::cloud::hosted_fqdns`) and the
//! residence router's LAN scoping (`flowmon::RouterMonitor`). The
//! attribution pipeline performs one lookup per observed FQDN address —
//! hundreds of thousands per crawl epoch at the paper's 100k-site scale — so
//! lookup latency here bounds the whole pipeline.
//!
//! The engine combines two classic techniques:
//!
//! * **Stride-16 root table** — the first [`Bits::ROOT_BITS`] (16) address
//!   bits index directly into a `2^16`-entry table, replacing up to 16
//!   dependent pointer-chases with one array load. Prefixes *shorter* than
//!   the stride live in a precomputed per-slot fallback (`short_best`, the
//!   DIR-24-8 trick), so they still resolve in O(1) without being walked.
//! * **Path compression** — below the root table, nodes store their full
//!   key-so-far and absolute bit depth, so one comparison (`XOR` +
//!   `leading_zeros`) skips an arbitrarily long single-branch run. A lookup
//!   visits at most one node per *stored branching point* on its path
//!   (≈ `log2(n)` for random tables) instead of one node per key bit.
//!
//! The seed implementation was a one-bit-per-node arena trie: an IPv6
//! `longest_match` chased up to 128 pointers, one heap node per prefix bit.
//! On the 50k-prefix criterion benches (1k lookups per iteration) this
//! rewrite measures 93.8 µs → 14.3 µs (**6.6x**) for
//! `lpm6_longest_match_50k_prefixes` and 51.3 µs → 6.0 µs (**8.6x**) for
//! `lpm4_longest_match_50k_prefixes`; the batched entry point is a further
//! 1.7x on duplicate-heavy attribution batches. See `BENCH_lpm.json` at the
//! repo root for the recorded before/after numbers.
//!
//! For batched workloads, [`LpmTrie::longest_match_many`] (and the
//! [`Lpm4`]/[`Lpm6`] wrappers) answers duplicate addresses from a
//! direct-mapped memo, so hot CDN addresses resolved by thousands of FQDNs
//! cost one walk. (A sort-the-batch variant was implemented first and
//! measured slower: post-rewrite, one lookup costs about one sort
//! comparison — see `BENCH_lpm.json`.)
//!
//! Tables with at most a dozen entries (a residence router's LAN prefixes,
//! test fixtures) stay in a linear-scan **small-table mode** and never
//! allocate the `2^16`-entry root tables; the first insert beyond the
//! threshold migrates them in.
//!
//! Removal merges path-compressed nodes back together: a node emptied by
//! `remove` is spliced out (single child) or detached (leaf), cascading
//! upward, so announce/withdraw churn leaves the trie structurally
//! identical to a fresh build of the surviving prefix set — depth stays
//! minimal over a long-lived RIB's lifetime ([`LpmTrie::node_count`] is the
//! metric; the interleaved-ops property tests assert the equivalence).

use crate::prefix::{Prefix4, Prefix6};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Key types usable in an [`LpmTrie`]: fixed-width big-endian bit strings.
pub trait Bits: Copy + Eq + Ord + std::fmt::Debug {
    /// Width of the key in bits (32 for IPv4, 128 for IPv6).
    const WIDTH: u8;

    /// Stride of the multibit root table (root slots = `2^ROOT_BITS`).
    const ROOT_BITS: u8 = 16;

    /// The all-zero key.
    fn zero() -> Self;

    /// The `i`-th bit counted from the most-significant end (0-based).
    fn bit(self, i: u8) -> bool;

    /// Return the key with bit `i` (from the most-significant end) set.
    fn with_bit(self, i: u8) -> Self;

    /// Zero out everything past the first `len` bits.
    fn truncate(self, len: u8) -> Self;

    /// The top [`Bits::ROOT_BITS`] bits, as a root-table index.
    fn root_slot(self) -> usize;

    /// Number of leading bits shared with `other` (capped at `WIDTH`).
    fn common_prefix_len(self, other: Self) -> u8;

    /// XOR-fold the key to 64 bits (batched-lookup memo hashing).
    fn fold_u64(self) -> u64;

    /// The `stride` bits starting `depth` bits from the most-significant
    /// end, as an index (`depth + stride` must not exceed `WIDTH`). The
    /// frozen multibit engine walks the address in these chunks.
    fn chunk(self, depth: u8, stride: u8) -> usize;

    /// The `count` (1..=64) bits starting `depth` bits from the
    /// most-significant end, right-aligned in a `u64` (`depth + count` must
    /// not exceed `WIDTH`). Used by the frozen engine's path-compressed
    /// nodes to verify a skipped bit run in one compare.
    fn bits_at(self, depth: u8, count: u8) -> u64;
}

impl Bits for u32 {
    const WIDTH: u8 = 32;

    fn zero() -> u32 {
        0
    }

    fn bit(self, i: u8) -> bool {
        debug_assert!(i < 32);
        self >> (31 - i) & 1 == 1
    }

    fn with_bit(self, i: u8) -> u32 {
        self | 1u32 << (31 - i)
    }

    fn truncate(self, len: u8) -> u32 {
        self & crate::prefix::mask32(len)
    }

    fn root_slot(self) -> usize {
        (self >> (32 - Self::ROOT_BITS)) as usize
    }

    fn common_prefix_len(self, other: u32) -> u8 {
        (self ^ other).leading_zeros().min(32) as u8
    }

    fn fold_u64(self) -> u64 {
        self as u64
    }

    fn chunk(self, depth: u8, stride: u8) -> usize {
        debug_assert!(depth + stride <= 32);
        (self >> (32 - depth - stride)) as usize & ((1 << stride) - 1)
    }

    fn bits_at(self, depth: u8, count: u8) -> u64 {
        debug_assert!(count >= 1 && depth + count <= 32);
        (self >> (32 - depth - count)) as u64 & (u64::MAX >> (64 - count))
    }
}

impl Bits for u128 {
    const WIDTH: u8 = 128;

    fn zero() -> u128 {
        0
    }

    fn bit(self, i: u8) -> bool {
        debug_assert!(i < 128);
        self >> (127 - i) & 1 == 1
    }

    fn with_bit(self, i: u8) -> u128 {
        self | 1u128 << (127 - i)
    }

    fn truncate(self, len: u8) -> u128 {
        self & crate::prefix::mask128(len)
    }

    fn root_slot(self) -> usize {
        (self >> (128 - Self::ROOT_BITS)) as usize
    }

    fn common_prefix_len(self, other: u128) -> u8 {
        (self ^ other).leading_zeros().min(128) as u8
    }

    fn fold_u64(self) -> u64 {
        (self >> 64) as u64 ^ self as u64
    }

    fn chunk(self, depth: u8, stride: u8) -> usize {
        debug_assert!(depth + stride <= 128);
        (self >> (128 - depth - stride)) as usize & ((1 << stride) - 1)
    }

    fn bits_at(self, depth: u8, count: u8) -> u64 {
        debug_assert!((1..=64).contains(&count) && depth + count <= 128);
        (self >> (128 - depth - count)) as u64 & (u64::MAX >> (64 - count))
    }
}

const NO_NODE: u32 = u32::MAX;

/// One path-compressed node: the full key bits from the address's
/// most-significant end down to absolute depth `len`.
#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    len: u8,
    value: Option<V>,
    children: [u32; 2],
}

/// Where a node pointer lives, for in-place rewiring during splits.
#[derive(Debug, Clone, Copy)]
enum Link {
    Root(usize),
    Child(usize, usize),
}

/// A longest-prefix-match trie mapping prefixes (key bits + length) to
/// values, supporting exact-match and longest-prefix-match queries.
///
/// ```
/// use iputil::trie::LpmTrie;
/// let mut t: LpmTrie<u32, &str> = LpmTrie::new();
/// t.insert(0x0a000000, 8, "10/8");          // 10.0.0.0/8
/// t.insert(0x0a140000, 16, "10.20/16");     // 10.20.0.0/16
/// assert_eq!(t.longest_match(0x0a140101), Some((16, &"10.20/16")));
/// assert_eq!(t.longest_match(0x0a010101), Some((8, &"10/8")));
/// assert_eq!(t.longest_match(0x0b000000), None);
/// ```
#[derive(Debug, Clone)]
pub struct LpmTrie<K: Bits, V> {
    /// Node arena; `children` and the root tables hold indices into it.
    nodes: Vec<Node<K, V>>,
    /// `2^ROOT_BITS` subtree roots for prefixes with `plen >= ROOT_BITS`.
    /// Empty while the trie is in small-table mode (see [`SMALL_MAX`]).
    root: Vec<u32>,
    /// Per-slot deepest short prefix (`plen < ROOT_BITS`) covering the slot:
    /// the precomputed fallback consulted when the subtree walk misses.
    short_best: Vec<u32>,
    /// Node indices of all stored short prefixes (at most `2^ROOT_BITS - 1`
    /// distinct ones; scanned only on short-prefix exact ops and removals).
    shorts: Vec<u32>,
    /// Small-table mode (active while `root` is unallocated): node indices
    /// of every stored prefix, scanned linearly. Tables with at most
    /// [`SMALL_MAX`] entries — LAN sets, test fixtures — never pay for the
    /// `2^ROOT_BITS` root tables; the first insert beyond the threshold
    /// migrates everything into them.
    smalls: Vec<u32>,
    /// Detached (removed small/short) node slots available for reuse, so
    /// announce/withdraw churn does not grow the arena without bound.
    free: Vec<u32>,
    len: usize,
}

/// Entry count up to which a trie stays in linear-scan small-table mode.
/// A handful of compares beats a root-table load at these sizes, and the
/// two `2^ROOT_BITS` tables (512 KiB combined) are never allocated. The
/// frozen multibit engine keeps the same threshold for its linear repr.
pub(crate) const SMALL_MAX: usize = 12;

impl<K: Bits, V> Default for LpmTrie<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Bits, V> LpmTrie<K, V> {
    /// Create an empty trie. The root tables are not allocated until the
    /// table outgrows small-table mode (`SMALL_MAX` entries), so empty
    /// and small tries are cheap to create and clone.
    pub fn new() -> LpmTrie<K, V> {
        LpmTrie {
            nodes: Vec::new(),
            root: Vec::new(),
            short_best: Vec::new(),
            shorts: Vec::new(),
            smalls: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Leave small-table mode: allocate the root tables and re-insert every
    /// stored prefix through the radix paths.
    fn build_tables(&mut self) {
        debug_assert!(self.root.is_empty());
        self.root = vec![NO_NODE; 1 << K::ROOT_BITS];
        self.short_best = vec![NO_NODE; 1 << K::ROOT_BITS];
        let old_nodes = std::mem::take(&mut self.nodes);
        self.smalls.clear();
        self.free.clear();
        self.len = 0;
        for node in old_nodes {
            if let Some(value) = node.value {
                if node.len < K::ROOT_BITS {
                    self.insert_short(node.key, node.len, value);
                } else {
                    self.insert_long(node.key, node.len, value);
                }
            }
        }
    }

    fn set_link(&mut self, link: Link, idx: u32) {
        match link {
            Link::Root(slot) => self.root[slot] = idx,
            Link::Child(node, b) => self.nodes[node].children[b] = idx,
        }
    }

    fn push_node(&mut self, key: K, len: u8, value: Option<V>) -> u32 {
        let node = Node {
            key,
            len,
            value,
            children: [NO_NODE, NO_NODE],
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            return idx;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        idx
    }

    /// The root slots covered by a short prefix `(key, plen)`.
    fn short_slot_range(key: K, plen: u8) -> std::ops::Range<usize> {
        debug_assert!(plen < K::ROOT_BITS);
        let base = key.root_slot();
        let count = 1usize << (K::ROOT_BITS - plen);
        base..base + count
    }

    /// Insert a prefix (key truncated to `plen` bits) with a value.
    /// Returns the previous value if the exact prefix was already present.
    ///
    /// # Panics
    /// Panics if `plen > K::WIDTH`.
    pub fn insert(&mut self, key: K, plen: u8, value: V) -> Option<V> {
        assert!(plen <= K::WIDTH, "prefix length out of range");
        let key = key.truncate(plen);
        if self.root.is_empty() {
            // Small-table mode: replace in place or append.
            for &idx in &self.smalls {
                let n = &mut self.nodes[idx as usize];
                if n.len == plen && n.key == key {
                    return n.value.replace(value);
                }
            }
            if self.len < SMALL_MAX {
                let idx = self.push_node(key, plen, Some(value));
                self.smalls.push(idx);
                self.len += 1;
                return None;
            }
            self.build_tables();
        }
        if plen < K::ROOT_BITS {
            return self.insert_short(key, plen, value);
        }
        self.insert_long(key, plen, value)
    }

    fn insert_short(&mut self, key: K, plen: u8, value: V) -> Option<V> {
        // Replace in place if the exact prefix exists.
        for &idx in &self.shorts {
            let n = &mut self.nodes[idx as usize];
            if n.len == plen && n.key == key {
                return n.value.replace(value);
            }
        }
        let idx = self.push_node(key, plen, Some(value));
        self.shorts.push(idx);
        // A deeper short prefix beats a shallower one on every slot it
        // covers; equal depth cannot collide (distinct prefixes of the same
        // length cover disjoint slots).
        for slot in Self::short_slot_range(key, plen) {
            let cur = self.short_best[slot];
            if cur == NO_NODE || self.nodes[cur as usize].len < plen {
                self.short_best[slot] = idx;
            }
        }
        self.len += 1;
        None
    }

    fn insert_long(&mut self, key: K, plen: u8, value: V) -> Option<V> {
        let slot = key.root_slot();
        let mut link = Link::Root(slot);
        let mut cur = self.root[slot];
        loop {
            if cur == NO_NODE {
                let idx = self.push_node(key, plen, Some(value));
                self.set_link(link, idx);
                self.len += 1;
                return None;
            }
            let (node_key, node_len) = {
                let n = &self.nodes[cur as usize];
                (n.key, n.len)
            };
            let cpl = key.common_prefix_len(node_key).min(plen).min(node_len);
            if cpl < node_len {
                // The new prefix diverges inside this node's compressed run:
                // split at the divergence point.
                let old_branch = node_key.bit(cpl) as usize;
                let mid = if cpl == plen {
                    // New prefix is an ancestor of the node: it becomes the
                    // intermediate itself.
                    self.push_node(key, plen, Some(value))
                } else {
                    let mid = self.push_node(key.truncate(cpl), cpl, None);
                    let leaf = self.push_node(key, plen, Some(value));
                    self.nodes[mid as usize].children[key.bit(cpl) as usize] = leaf;
                    mid
                };
                self.nodes[mid as usize].children[old_branch] = cur;
                self.set_link(link, mid);
                self.len += 1;
                return None;
            }
            // Node's path is a prefix of the key.
            if node_len == plen {
                let prev = self.nodes[cur as usize].value.replace(value);
                if prev.is_none() {
                    self.len += 1;
                }
                return prev;
            }
            let b = key.bit(node_len) as usize;
            link = Link::Child(cur as usize, b);
            cur = self.nodes[cur as usize].children[b];
        }
    }

    /// Exact-match lookup of a stored prefix.
    pub fn get(&self, key: K, plen: u8) -> Option<&V> {
        let node = self.walk_exact(key, plen)?;
        self.nodes[node].value.as_ref()
    }

    /// Mutable exact-match lookup.
    pub fn get_mut(&mut self, key: K, plen: u8) -> Option<&mut V> {
        let node = self.walk_exact(key, plen)?;
        self.nodes[node].value.as_mut()
    }

    /// Remove an exact prefix, returning its value. Emptied nodes are
    /// merged back into their neighbours (a valueless node keeps existing
    /// only while it has two children), so announce/withdraw churn leaves
    /// the trie structurally identical to a fresh build of the surviving
    /// prefix set — lookup depth never degrades over a long-lived RIB's
    /// lifetime.
    pub fn remove(&mut self, key: K, plen: u8) -> Option<V> {
        if plen > K::WIDTH {
            return None;
        }
        let key = key.truncate(plen);
        if self.root.is_empty() {
            let pos = self.smalls.iter().position(|&idx| {
                let n = &self.nodes[idx as usize];
                n.len == plen && n.key == key
            })?;
            let idx = self.smalls.swap_remove(pos);
            let v = self.nodes[idx as usize].value.take()?;
            self.free.push(idx);
            self.len -= 1;
            return Some(v);
        }
        if plen < K::ROOT_BITS {
            return self.remove_short(key, plen);
        }
        // Walk to the exact node, recording every (incoming link, node) so
        // the un-merge pass below can rewire in place.
        let slot = key.root_slot();
        let mut path: Vec<(Link, u32)> = Vec::new();
        let mut link = Link::Root(slot);
        let mut cur = self.root[slot];
        let found = loop {
            if cur == NO_NODE {
                return None;
            }
            let n = &self.nodes[cur as usize];
            if n.len > plen || key.truncate(n.len) != n.key {
                return None;
            }
            path.push((link, cur));
            if n.len == plen {
                break cur;
            }
            let b = key.bit(n.len) as usize;
            link = Link::Child(cur as usize, b);
            cur = n.children[b];
        };
        let v = self.nodes[found as usize].value.take()?;
        self.len -= 1;
        self.prune_path(&path);
        Some(v)
    }

    /// Merge pass after a long-prefix removal: walking the recorded path
    /// bottom-up, a valueless leaf is detached (and may cascade — its
    /// parent just lost a child), and a valueless single-child node is
    /// spliced out by pointing its incoming link at the child, restoring
    /// path compression. Nodes holding a value, or with two children, stop
    /// the pass.
    fn prune_path(&mut self, path: &[(Link, u32)]) {
        for &(incoming, idx) in path.iter().rev() {
            let n = &self.nodes[idx as usize];
            if n.value.is_some() {
                break;
            }
            match (n.children[0], n.children[1]) {
                (NO_NODE, NO_NODE) => {
                    self.set_link(incoming, NO_NODE);
                    self.free.push(idx);
                    // Continue upward: the parent lost this child.
                }
                (child, NO_NODE) | (NO_NODE, child) => {
                    self.set_link(incoming, child);
                    self.free.push(idx);
                    break;
                }
                _ => break,
            }
        }
    }

    /// Number of live arena nodes (stored prefixes plus branching interior
    /// nodes). With merge-on-remove this equals the node count of a fresh
    /// build of the same prefix set — the structural-equivalence metric the
    /// property tests assert.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn remove_short(&mut self, key: K, plen: u8) -> Option<V> {
        let pos = self.shorts.iter().position(|&idx| {
            let n = &self.nodes[idx as usize];
            n.len == plen && n.key == key
        })?;
        let idx = self.shorts.swap_remove(pos);
        let v = self.nodes[idx as usize].value.take()?;
        self.len -= 1;
        // Recompute the fallback over the removed prefix's slot range: clear
        // the slots it owned, then let every remaining short prefix repaint
        // only its own overlap (deepest wins). One pass over `shorts`, each
        // painting at most its own coverage — not a rescan per slot.
        let removed = Self::short_slot_range(key, plen);
        for slot in removed.clone() {
            if self.short_best[slot] == idx {
                self.short_best[slot] = NO_NODE;
            }
        }
        for &s in &self.shorts {
            let n = &self.nodes[s as usize];
            let cover = Self::short_slot_range(n.key, n.len);
            let overlap = cover.start.max(removed.start)..cover.end.min(removed.end);
            for slot in overlap {
                let cur = self.short_best[slot];
                if cur == NO_NODE || self.nodes[cur as usize].len < n.len {
                    self.short_best[slot] = s;
                }
            }
        }
        self.free.push(idx);
        Some(v)
    }

    /// Longest-prefix-match: the most specific stored prefix containing
    /// `addr`, returned as `(prefix_len, &value)`.
    #[inline]
    pub fn longest_match(&self, addr: K) -> Option<(u8, &V)> {
        obs::counter_add("lpm.lookups", 1);
        if self.root.is_empty() {
            // Small-table mode: a linear scan over at most SMALL_MAX nodes.
            let mut best: Option<(u8, &V)> = None;
            for &idx in &self.smalls {
                let n = &self.nodes[idx as usize];
                if addr.truncate(n.len) == n.key && best.is_none_or(|(len, _)| n.len > len) {
                    best = n.value.as_ref().map(|v| (n.len, v));
                }
            }
            return best;
        }
        let slot = addr.root_slot();
        let mut best = self.short_best[slot];
        let mut cur = self.root[slot];
        while cur != NO_NODE {
            let n = &self.nodes[cur as usize];
            if addr.truncate(n.len) != n.key {
                break;
            }
            if n.value.is_some() {
                best = cur;
            }
            if n.len >= K::WIDTH {
                break;
            }
            cur = n.children[addr.bit(n.len) as usize];
        }
        if best == NO_NODE {
            return None;
        }
        let n = &self.nodes[best as usize];
        n.value.as_ref().map(|v| (n.len, v))
    }

    /// Batched longest-prefix-match preserving input order.
    ///
    /// Duplicate addresses (hot CDN endpoints resolved by thousands of
    /// FQDNs) are answered from a direct-mapped memo instead of re-walking
    /// the trie — the attribution loop in `core::cloud` feeds entire crawl
    /// epochs through this. When a probe window over the head of the batch
    /// observes a memo hit rate below threshold (a duplicate-poor batch),
    /// the memo bypasses itself for the remainder — decided
    /// deterministically from batch contents only; see
    /// [`MEMO_BYPASS`](crate::multibit::MEMO_BYPASS). Sorting the batch was
    /// measured first and lost: with the stride-16 + path-compressed engine
    /// a lookup costs about as much as one sort comparison, so an O(1) memo
    /// probe is the only batching that still pays.
    pub fn longest_match_many(&self, addrs: &[K]) -> Vec<Option<(u8, &V)>> {
        crate::multibit::memoized_batch(
            addrs,
            |addr| self.longest_match(addr),
            |rest, out| out.extend(rest.iter().map(|&addr| self.longest_match(addr))),
        )
    }

    /// Batched value-only lookup: [`LpmTrie::longest_match_many`] minus the
    /// prefix-length — the thawed twin of
    /// [`FrozenLpm::values_many`](crate::multibit::FrozenLpm::values_many),
    /// so attribution pipelines keep one shape across engine states.
    pub fn values_many(&self, addrs: &[K]) -> Vec<Option<&V>> {
        crate::multibit::memoized_batch(
            addrs,
            |addr| self.longest_match(addr).map(|(_, v)| v),
            |rest, out| {
                out.extend(
                    rest.iter()
                        .map(|&addr| self.longest_match(addr).map(|(_, v)| v)),
                )
            },
        )
    }

    /// Visit every stored `(key, plen, &value)` in depth-first
    /// (lexicographic) order: a prefix before its extensions, 0-branch
    /// before 1-branch — identical to sorting by `(key, plen)`.
    pub fn for_each<F: FnMut(K, u8, &V)>(&self, mut f: F) {
        let mut entries: Vec<(K, u8, u32)> = Vec::with_capacity(self.len);
        for (idx, n) in self.nodes.iter().enumerate() {
            if n.value.is_some() {
                entries.push((n.key, n.len, idx as u32));
            }
        }
        entries.sort_unstable_by_key(|&(key, plen, _)| (key, plen));
        for (key, plen, idx) in entries {
            let v = self.nodes[idx as usize].value.as_ref().expect("filtered");
            f(key, plen, v);
        }
    }

    /// Collect all stored prefixes as `(key, plen)` pairs.
    pub fn keys(&self) -> Vec<(K, u8)> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|k, l, _| out.push((k, l)));
        out
    }

    /// Compile the current contents into a [`FrozenLpm`](crate::FrozenLpm):
    /// an immutable flattened multibit table answering byte-identically but
    /// substantially faster. The trie stays the mutable authority; freeze
    /// again after mutating.
    pub fn freeze(&self) -> crate::FrozenLpm<K, V>
    where
        V: Clone,
    {
        crate::FrozenLpm::from_trie(self)
    }

    fn walk_exact(&self, key: K, plen: u8) -> Option<usize> {
        if plen > K::WIDTH {
            return None;
        }
        let key = key.truncate(plen);
        if self.root.is_empty() {
            return self
                .smalls
                .iter()
                .find(|&&idx| {
                    let n = &self.nodes[idx as usize];
                    n.len == plen && n.key == key
                })
                .map(|&idx| idx as usize);
        }
        if plen < K::ROOT_BITS {
            return self
                .shorts
                .iter()
                .find(|&&idx| {
                    let n = &self.nodes[idx as usize];
                    n.len == plen && n.key == key
                })
                .map(|&idx| idx as usize);
        }
        let mut cur = self.root[key.root_slot()];
        while cur != NO_NODE {
            let n = &self.nodes[cur as usize];
            if n.len > plen || key.truncate(n.len) != n.key {
                return None;
            }
            if n.len == plen {
                return Some(cur as usize);
            }
            cur = n.children[key.bit(n.len) as usize];
        }
        None
    }
}

/// Longest-prefix-match table for IPv4 built on [`LpmTrie`].
#[derive(Debug, Clone)]
pub struct Lpm4<V> {
    trie: LpmTrie<u32, V>,
}

impl<V> Default for Lpm4<V> {
    fn default() -> Self {
        Lpm4::new()
    }
}

impl<V> Lpm4<V> {
    /// Create an empty table.
    pub fn new() -> Lpm4<V> {
        Lpm4 {
            trie: LpmTrie::new(),
        }
    }

    /// Insert a prefix, returning any previous value for the exact prefix.
    pub fn insert(&mut self, prefix: Prefix4, value: V) -> Option<V> {
        self.trie.insert(prefix.bits(), prefix.len(), value)
    }

    /// Most specific covering prefix for `addr`.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(Prefix4, &V)> {
        self.trie
            .longest_match(crate::v4_to_u32(addr))
            .map(|(len, v)| (Prefix4::new(addr, len), v))
    }

    /// Batched [`Lpm4::longest_match`] over a slice, preserving input order.
    pub fn longest_match_many(&self, addrs: &[Ipv4Addr]) -> Vec<Option<(Prefix4, &V)>> {
        let keys: Vec<u32> = addrs.iter().map(|&a| crate::v4_to_u32(a)).collect();
        self.trie
            .longest_match_many(&keys)
            .into_iter()
            .zip(addrs)
            .map(|(r, &a)| r.map(|(len, v)| (Prefix4::new(a, len), v)))
            .collect()
    }

    /// Batched value-only lookup (see [`LpmTrie::values_many`]).
    pub fn values_many(&self, addrs: &[Ipv4Addr]) -> Vec<Option<&V>> {
        let keys: Vec<u32> = addrs.iter().map(|&a| crate::v4_to_u32(a)).collect();
        self.trie.values_many(&keys)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix4) -> Option<&V> {
        self.trie.get(prefix.bits(), prefix.len())
    }

    /// Remove an exact prefix.
    pub fn remove(&mut self, prefix: Prefix4) -> Option<V> {
        self.trie.remove(prefix.bits(), prefix.len())
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Live arena nodes (see [`LpmTrie::node_count`]).
    pub fn node_count(&self) -> usize {
        self.trie.node_count()
    }

    /// Compile into a [`Frozen4`](crate::Frozen4) flattened multibit table
    /// (see [`LpmTrie::freeze`]).
    pub fn freeze(&self) -> crate::Frozen4<V>
    where
        V: Clone,
    {
        crate::Frozen4::new(self.trie.freeze())
    }
}

/// Longest-prefix-match table for IPv6 built on [`LpmTrie`].
#[derive(Debug, Clone)]
pub struct Lpm6<V> {
    trie: LpmTrie<u128, V>,
}

impl<V> Default for Lpm6<V> {
    fn default() -> Self {
        Lpm6::new()
    }
}

impl<V> Lpm6<V> {
    /// Create an empty table.
    pub fn new() -> Lpm6<V> {
        Lpm6 {
            trie: LpmTrie::new(),
        }
    }

    /// Insert a prefix, returning any previous value for the exact prefix.
    pub fn insert(&mut self, prefix: Prefix6, value: V) -> Option<V> {
        self.trie.insert(prefix.bits(), prefix.len(), value)
    }

    /// Most specific covering prefix for `addr`.
    pub fn longest_match(&self, addr: Ipv6Addr) -> Option<(Prefix6, &V)> {
        self.trie
            .longest_match(crate::v6_to_u128(addr))
            .map(|(len, v)| (Prefix6::new(addr, len), v))
    }

    /// Batched [`Lpm6::longest_match`] over a slice, preserving input order.
    pub fn longest_match_many(&self, addrs: &[Ipv6Addr]) -> Vec<Option<(Prefix6, &V)>> {
        let keys: Vec<u128> = addrs.iter().map(|&a| crate::v6_to_u128(a)).collect();
        self.trie
            .longest_match_many(&keys)
            .into_iter()
            .zip(addrs)
            .map(|(r, &a)| r.map(|(len, v)| (Prefix6::new(a, len), v)))
            .collect()
    }

    /// Batched value-only lookup (see [`LpmTrie::values_many`]).
    pub fn values_many(&self, addrs: &[Ipv6Addr]) -> Vec<Option<&V>> {
        let keys: Vec<u128> = addrs.iter().map(|&a| crate::v6_to_u128(a)).collect();
        self.trie.values_many(&keys)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix6) -> Option<&V> {
        self.trie.get(prefix.bits(), prefix.len())
    }

    /// Remove an exact prefix.
    pub fn remove(&mut self, prefix: Prefix6) -> Option<V> {
        self.trie.remove(prefix.bits(), prefix.len())
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Live arena nodes (see [`LpmTrie::node_count`]).
    pub fn node_count(&self) -> usize {
        self.trie.node_count()
    }

    /// Compile into a [`Frozen6`](crate::Frozen6) flattened multibit table
    /// (see [`LpmTrie::freeze`]).
    pub fn freeze(&self) -> crate::Frozen6<V>
    where
        V: Clone,
    {
        crate::Frozen6::new(self.trie.freeze())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpm_basic() {
        let mut t: LpmTrie<u32, &str> = LpmTrie::new();
        assert!(t.is_empty());
        t.insert(0x0a00_0000, 8, "ten");
        t.insert(0x0a14_0000, 16, "ten-twenty");
        t.insert(0, 0, "default");
        assert_eq!(t.len(), 3);
        assert_eq!(t.longest_match(0x0a14_0505), Some((16, &"ten-twenty")));
        assert_eq!(t.longest_match(0x0a01_0101), Some((8, &"ten")));
        assert_eq!(t.longest_match(0xc0a8_0101), Some((0, &"default")));
    }

    #[test]
    fn lpm_no_default_misses() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0xc000_0200, 24, 1);
        assert_eq!(t.longest_match(0xc000_0300), None);
        assert_eq!(t.longest_match(0xc000_02ff), Some((24, &1)));
    }

    #[test]
    fn insert_replaces() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        assert_eq!(t.insert(0x0a00_0000, 8, 1), None);
        assert_eq!(t.insert(0x0a00_0000, 8, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0x0a00_0000, 8), Some(&2));
        // Same for long prefixes (>= root stride).
        assert_eq!(t.insert(0x0a14_0000, 24, 5), None);
        assert_eq!(t.insert(0x0a14_0000, 24, 6), Some(5));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_works() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a00_0000, 8, 1);
        t.insert(0x0a14_0000, 16, 2);
        assert_eq!(t.remove(0x0a14_0000, 16), Some(2));
        assert_eq!(t.remove(0x0a14_0000, 16), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.longest_match(0x0a14_0101), Some((8, &1)));
    }

    #[test]
    fn remove_short_recomputes_fallback() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a00_0000, 8, 1);
        t.insert(0x0a00_0000, 12, 2); // deeper short prefix shadows /8
        assert_eq!(t.longest_match(0x0a01_0101), Some((12, &2)));
        assert_eq!(t.remove(0x0a00_0000, 12), Some(2));
        // The /8 must become visible again on the uncovered slots.
        assert_eq!(t.longest_match(0x0a01_0101), Some((8, &1)));
        assert_eq!(t.remove(0x0a00_0000, 8), Some(1));
        assert_eq!(t.longest_match(0x0a01_0101), None);
        assert!(t.is_empty());
    }

    #[test]
    fn key_is_truncated_on_insert() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a01_0203, 8, 9); // host bits ignored
        assert_eq!(t.get(0x0a00_0000, 8), Some(&9));
    }

    #[test]
    fn root_stride_boundary_lengths() {
        // Lengths at ROOT_BITS-1, ROOT_BITS and ROOT_BITS+1 must coexist.
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a14_0000, 15, 15);
        t.insert(0x0a14_0000, 16, 16);
        t.insert(0x0a14_8000, 17, 17);
        assert_eq!(t.longest_match(0x0a14_8001), Some((17, &17)));
        assert_eq!(t.longest_match(0x0a14_0001), Some((16, &16)));
        assert_eq!(t.longest_match(0x0a15_0001), Some((15, &15)));
        assert_eq!(t.get(0x0a14_0000, 15), Some(&15));
        assert_eq!(t.get(0x0a14_0000, 16), Some(&16));
        assert_eq!(t.get(0x0a14_8000, 17), Some(&17));
    }

    #[test]
    fn split_at_divergence_point() {
        // Two /24s sharing 20 bits force a split at depth 20; a later /20
        // ancestor insert must land on the intermediate node.
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a14_1000, 24, 1);
        t.insert(0x0a14_1800, 24, 2);
        assert_eq!(t.longest_match(0x0a14_10ff), Some((24, &1)));
        assert_eq!(t.longest_match(0x0a14_18ff), Some((24, &2)));
        assert_eq!(t.longest_match(0x0a14_1fff), None);
        t.insert(0x0a14_1000, 20, 3);
        assert_eq!(t.longest_match(0x0a14_1fff), Some((20, &3)));
        assert_eq!(t.longest_match(0x0a14_10ff), Some((24, &1)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn ancestor_inserted_after_descendant() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0xc0a8_0100, 24, 1);
        t.insert(0xc0a8_0000, 18, 2); // ancestor arrives second
        assert_eq!(t.longest_match(0xc0a8_0101), Some((24, &1)));
        assert_eq!(t.longest_match(0xc0a8_2001), Some((18, &2)));
        assert_eq!(t.get(0xc0a8_0000, 18), Some(&2));
    }

    #[test]
    fn lpm4_wrapper() {
        let mut t: Lpm4<&str> = Lpm4::new();
        t.insert("10.0.0.0/8".parse().unwrap(), "big");
        t.insert("10.9.0.0/16".parse().unwrap(), "small");
        let (p, v) = t.longest_match("10.9.4.4".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.9.0.0/16");
        assert_eq!(*v, "small");
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove("10.9.0.0/16".parse().unwrap()), Some("small"));
        let (p, _) = t.longest_match("10.9.4.4".parse().unwrap()).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn lpm6_wrapper() {
        let mut t: Lpm6<u32> = Lpm6::new();
        t.insert("2001:db8::/32".parse().unwrap(), 1);
        t.insert("2001:db8:ff::/48".parse().unwrap(), 2);
        let (p, v) = t.longest_match("2001:db8:ff::1".parse().unwrap()).unwrap();
        assert_eq!(p.len(), 48);
        assert_eq!(*v, 2);
        assert!(t.longest_match("2002::1".parse().unwrap()).is_none());
    }

    #[test]
    fn full_length_host_routes() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0xc0a8_0101, 32, 7);
        assert_eq!(t.longest_match(0xc0a8_0101), Some((32, &7)));
        assert_eq!(t.longest_match(0xc0a8_0102), None);
        let mut t6: LpmTrie<u128, u8> = LpmTrie::new();
        let a = crate::v6_to_u128("2001:db8::1".parse().unwrap());
        t6.insert(a, 128, 9);
        assert_eq!(t6.longest_match(a), Some((128, &9)));
    }

    #[test]
    fn for_each_visits_everything_in_order() {
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        t.insert(0x0a00_0000, 8, 1);
        t.insert(0x0a14_0000, 16, 2);
        t.insert(0x0b00_0000, 8, 3);
        t.insert(0, 0, 0);
        let keys = t.keys();
        assert_eq!(
            keys,
            vec![
                (0, 0),
                (0x0a00_0000, 8),
                (0x0a14_0000, 16),
                (0x0b00_0000, 8)
            ]
        );
        let mut total = 0u32;
        t.for_each(|_, _, v| total += *v as u32);
        assert_eq!(total, 6);
    }

    #[test]
    fn longest_match_many_preserves_order_and_dedupes() {
        let mut t: Lpm4<u8> = Lpm4::new();
        t.insert("10.0.0.0/8".parse().unwrap(), 1);
        t.insert("10.9.0.0/16".parse().unwrap(), 2);
        let addrs: Vec<Ipv4Addr> = ["10.9.0.1", "172.16.0.1", "10.1.2.3", "10.9.0.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let got = t.longest_match_many(&addrs);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].map(|(p, v)| (p.len(), *v)), Some((16, 2)));
        assert_eq!(got[1], None);
        assert_eq!(got[2].map(|(p, v)| (p.len(), *v)), Some((8, 1)));
        assert_eq!(got[3].map(|(p, v)| (p.len(), *v)), Some((16, 2)));
        // Batched must agree with one-at-a-time on every input.
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(
                got[i].map(|(p, v)| (p, *v)),
                t.longest_match(a).map(|(p, v)| (p, *v))
            );
        }
    }

    #[test]
    fn bit_indexing() {
        assert!(0x8000_0000u32.bit(0));
        assert!(!0x8000_0000u32.bit(1));
        assert!(1u32.bit(31));
        assert!((1u128 << 127).bit(0));
        assert!(1u128.bit(127));
    }

    #[test]
    fn churn_does_not_grow_the_arena() {
        // Announce/withdraw cycles must recycle detached nodes, not append
        // (a long-lived RIB would otherwise grow without bound).
        let mut small: LpmTrie<u32, u8> = LpmTrie::new();
        for i in 0..200 {
            small.insert(0x0a00_0000, 8, i as u8);
            assert_eq!(small.remove(0x0a00_0000, 8), Some(i as u8));
        }
        assert!(
            small.nodes.len() <= 1,
            "small-mode churn grew arena to {}",
            small.nodes.len()
        );

        let mut big: LpmTrie<u32, u8> = LpmTrie::new();
        for i in 0..32 {
            big.insert(0x0b00_0000 + (i << 16), 16, 0); // force table mode
        }
        let baseline = big.nodes.len();
        for i in 0..200 {
            big.insert(0x0a00_0000, 8, i as u8); // short prefix in table mode
            assert_eq!(big.remove(0x0a00_0000, 8), Some(i as u8));
        }
        assert!(
            big.nodes.len() <= baseline + 1,
            "short-prefix churn grew arena from {baseline} to {}",
            big.nodes.len()
        );
        // Long-prefix churn reuses the in-place node (value slot cleared).
        for i in 0..200 {
            big.insert(0x0c00_0000, 24, i as u8);
            assert_eq!(big.remove(0x0c00_0000, 24), Some(i as u8));
        }
        assert!(big.nodes.len() <= baseline + 2);
        // The trie still answers correctly after all that churn.
        big.insert(0x0a00_0000, 8, 77);
        assert_eq!(big.longest_match(0x0a01_0101), Some((8, &77)));
    }

    #[test]
    fn remove_merges_split_nodes_back() {
        // Force table mode with 16 anchors, then split a run and heal it.
        let mut t: LpmTrie<u32, u8> = LpmTrie::new();
        for i in 0..16u32 {
            t.insert(0xb000_0000 + (i << 20), 16, 0);
        }
        let baseline = t.node_count();
        // Two /24s under one /16 create an interior split node at bit 20.
        t.insert(0x0a14_1000, 24, 1);
        t.insert(0x0a14_1800, 24, 2);
        assert_eq!(t.node_count(), baseline + 3, "two leaves + one interior");
        // Removing one /24 must also splice the now-pointless interior out.
        assert_eq!(t.remove(0x0a14_1800, 24), Some(2));
        assert_eq!(t.node_count(), baseline + 1, "interior merged away");
        assert_eq!(t.longest_match(0x0a14_10ff), Some((24, &1)));
        assert_eq!(t.remove(0x0a14_1000, 24), Some(1));
        assert_eq!(t.node_count(), baseline, "subtree fully reclaimed");
        // A valueless ancestor chain collapses when a leaf is detached.
        t.insert(0x0a00_0000, 20, 7);
        t.insert(0x0a00_0800, 24, 8); // child of the /20's subtree
        assert_eq!(t.remove(0x0a00_0800, 24), Some(8));
        assert_eq!(t.remove(0x0a00_0000, 20), Some(7));
        assert_eq!(t.node_count(), baseline);
    }

    #[test]
    fn common_prefix_and_slots() {
        assert_eq!(0xffff_0000u32.common_prefix_len(0xffff_ffff), 16);
        assert_eq!(0u32.common_prefix_len(0), 32);
        assert_eq!(0x0a14_0000u32.root_slot(), 0x0a14);
        assert_eq!(
            crate::v6_to_u128("2001:db8::".parse().unwrap()).root_slot(),
            0x2001
        );
    }
}
