//! Prefix-preserving address anonymization (CryptoPAN-style).
//!
//! The paper's appendix A describes the privacy pipeline used on residence
//! routers: before flow logs are uploaded, the router scrambles the lower 8
//! bits of IPv4 addresses and the lower /64 of IPv6 addresses with CryptoPAN
//! (Xu et al., ICNP 2002). CryptoPAN's defining property is *prefix
//! preservation*: if two addresses share a `k`-bit prefix, their anonymized
//! forms share exactly a `k`-bit prefix too, so AS- and prefix-level analysis
//! keeps working on anonymized data.
//!
//! The classic construction anonymizes bit `i` as
//! `a_i XOR f(a_1 .. a_{i-1})` where `f` is a keyed PRF producing one bit
//! per prefix. We instantiate `f` with [`SipHasher24`] instead of the
//! original's AES/Rijndael — the security argument (PRF indistinguishability)
//! carries over and it keeps the crate dependency-free.
//!
//! [`AnonymizerConfig`] selects how many leading bits are left intact, which
//! expresses both the paper's configuration (`paper()`: keep 24 bits of v4 /
//! 64 bits of v6) and full-address anonymization (`full()`).

use crate::hash::SipHasher24;
use crate::{u128_to_v6, u32_to_v4, v4_to_u32, v6_to_u128};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// How much of each address is anonymized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnonymizerConfig {
    /// Number of leading IPv4 bits passed through unchanged (0..=32).
    pub keep_v4_bits: u8,
    /// Number of leading IPv6 bits passed through unchanged (0..=128).
    pub keep_v6_bits: u8,
}

impl AnonymizerConfig {
    /// The paper's configuration: scramble the low 8 bits of IPv4 (keep /24)
    /// and the low 64 bits of IPv6 (keep /64).
    pub fn paper() -> AnonymizerConfig {
        AnonymizerConfig {
            keep_v4_bits: 24,
            keep_v6_bits: 64,
        }
    }

    /// Anonymize entire addresses (classic CryptoPAN).
    pub fn full() -> AnonymizerConfig {
        AnonymizerConfig {
            keep_v4_bits: 0,
            keep_v6_bits: 0,
        }
    }
}

impl Default for AnonymizerConfig {
    fn default() -> Self {
        AnonymizerConfig::paper()
    }
}

/// Keyed, prefix-preserving address anonymizer.
///
/// ```
/// use iputil::anon::{Anonymizer, AnonymizerConfig};
/// use std::net::Ipv4Addr;
///
/// let anon = Anonymizer::new(*b"an example key!!", AnonymizerConfig::full());
/// let a = anon.anon_v4(Ipv4Addr::new(10, 1, 2, 3));
/// let b = anon.anon_v4(Ipv4Addr::new(10, 1, 2, 200));
/// // Shared 24-bit prefix is preserved in the output:
/// assert_eq!(u32::from(a) >> 8, u32::from(b) >> 8);
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct Anonymizer {
    prf: SipHasher24,
    config: AnonymizerConfig,
}

impl Anonymizer {
    /// Create an anonymizer from a 16-byte key and a configuration.
    ///
    /// # Panics
    /// Panics if the configured keep-bits exceed the family widths.
    pub fn new(key: [u8; 16], config: AnonymizerConfig) -> Anonymizer {
        assert!(config.keep_v4_bits <= 32, "keep_v4_bits > 32");
        assert!(config.keep_v6_bits <= 128, "keep_v6_bits > 128");
        Anonymizer {
            prf: SipHasher24::from_key(key),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> AnonymizerConfig {
        self.config
    }

    /// Anonymize an IPv4 address.
    pub fn anon_v4(&self, addr: Ipv4Addr) -> Ipv4Addr {
        let bits = v4_to_u32(addr);
        let mut out = bits;
        for i in self.config.keep_v4_bits..32 {
            // PRF over (family tag, bit position, the i leading ORIGINAL bits).
            let prefix = if i == 0 { 0 } else { bits >> (32 - i as u32) };
            let f = self.prf.hash(&prf_input(4, i, prefix as u128)) & 1;
            out ^= (f as u32) << (31 - i as u32);
        }
        u32_to_v4(out)
    }

    /// Anonymize an IPv6 address.
    pub fn anon_v6(&self, addr: Ipv6Addr) -> Ipv6Addr {
        let bits = v6_to_u128(addr);
        let mut out = bits;
        for i in self.config.keep_v6_bits..128 {
            let prefix = if i == 0 { 0 } else { bits >> (128 - i as u32) };
            let f = self.prf.hash(&prf_input(6, i, prefix)) & 1;
            out ^= (f as u128) << (127 - i as u32);
        }
        u128_to_v6(out)
    }

    /// Anonymize an address of either family.
    pub fn anon(&self, addr: IpAddr) -> IpAddr {
        match addr {
            IpAddr::V4(a) => IpAddr::V4(self.anon_v4(a)),
            IpAddr::V6(a) => IpAddr::V6(self.anon_v6(a)),
        }
    }
}

/// Encode the PRF input: family tag, bit index, and the prefix bits observed
/// so far. The prefix is length-prefixed by `i` so distinct (length, value)
/// pairs never collide.
fn prf_input(family: u8, i: u8, prefix: u128) -> [u8; 18] {
    let mut buf = [0u8; 18];
    buf[0] = family;
    buf[1] = i;
    buf[2..18].copy_from_slice(&prefix.to_le_bytes());
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon_full() -> Anonymizer {
        Anonymizer::new(*b"0123456789abcdef", AnonymizerConfig::full())
    }

    fn shared_prefix_len_v4(a: Ipv4Addr, b: Ipv4Addr) -> u32 {
        (v4_to_u32(a) ^ v4_to_u32(b)).leading_zeros()
    }

    fn shared_prefix_len_v6(a: Ipv6Addr, b: Ipv6Addr) -> u32 {
        (v6_to_u128(a) ^ v6_to_u128(b)).leading_zeros()
    }

    #[test]
    fn deterministic() {
        let anon = anon_full();
        let a = Ipv4Addr::new(198, 51, 100, 7);
        assert_eq!(anon.anon_v4(a), anon.anon_v4(a));
    }

    #[test]
    fn key_dependence() {
        let a1 = Anonymizer::new(*b"0123456789abcdef", AnonymizerConfig::full());
        let a2 = Anonymizer::new(*b"0123456789abcdeg", AnonymizerConfig::full());
        let addr = Ipv4Addr::new(198, 51, 100, 7);
        assert_ne!(a1.anon_v4(addr), a2.anon_v4(addr));
    }

    #[test]
    fn preserves_shared_prefix_exactly_v4() {
        let anon = anon_full();
        let a = Ipv4Addr::new(10, 20, 30, 40);
        let b = Ipv4Addr::new(10, 20, 30, 41); // shares 31 bits
        let c = Ipv4Addr::new(10, 20, 31, 40); // shares 22 bits
        let (a2, b2, c2) = (anon.anon_v4(a), anon.anon_v4(b), anon.anon_v4(c));
        assert_eq!(
            shared_prefix_len_v4(a, b),
            shared_prefix_len_v4(a2, b2),
            "first differing bit must stay at the same position"
        );
        assert_eq!(shared_prefix_len_v4(a, c), shared_prefix_len_v4(a2, c2));
    }

    #[test]
    fn preserves_shared_prefix_exactly_v6() {
        let anon = anon_full();
        let a: Ipv6Addr = "2001:db8:1:2::100".parse().unwrap();
        let b: Ipv6Addr = "2001:db8:1:2::200".parse().unwrap();
        let (a2, b2) = (anon.anon_v6(a), anon.anon_v6(b));
        assert_eq!(shared_prefix_len_v6(a, b), shared_prefix_len_v6(a2, b2));
    }

    #[test]
    fn paper_config_keeps_leading_bits() {
        let anon = Anonymizer::new(*b"0123456789abcdef", AnonymizerConfig::paper());
        let a = Ipv4Addr::new(203, 0, 113, 99);
        let out = anon.anon_v4(a);
        assert_eq!(out.octets()[..3], a.octets()[..3], "first 24 bits intact");

        let v6: Ipv6Addr = "2001:db8:aa:bb:1:2:3:4".parse().unwrap();
        let out6 = anon.anon_v6(v6);
        assert_eq!(
            v6_to_u128(out6) >> 64,
            v6_to_u128(v6) >> 64,
            "upper /64 intact"
        );
        assert_ne!(out6, v6, "lower half must actually change for this key");
    }

    #[test]
    fn full_anon_is_injective_on_a_24() {
        // Prefix preservation implies injectivity; verify directly on a /24.
        let anon = anon_full();
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u32 {
            let a = Ipv4Addr::from(0xc0000200 | i); // 192.0.2.0/24
            assert!(seen.insert(anon.anon_v4(a)), "collision at {a}");
        }
    }

    #[test]
    fn mixed_family_dispatch() {
        let anon = anon_full();
        let v4: IpAddr = "192.0.2.1".parse().unwrap();
        let v6: IpAddr = "2001:db8::1".parse().unwrap();
        assert!(matches!(anon.anon(v4), IpAddr::V4(_)));
        assert!(matches!(anon.anon(v6), IpAddr::V6(_)));
    }

    #[test]
    #[should_panic(expected = "keep_v4_bits")]
    fn rejects_bad_config() {
        Anonymizer::new(
            [0; 16],
            AnonymizerConfig {
                keep_v4_bits: 33,
                keep_v6_bits: 0,
            },
        );
    }
}
