//! Deterministic address-space allocators.
//!
//! The world generator carves the synthetic Internet out of fixed pools:
//! every AS gets prefixes, every cloud region gets subnets, every residence
//! gets a LAN and (for dual-stack ISPs) a delegated IPv6 prefix. These
//! allocators hand out subnets and hosts sequentially, so a given seed always
//! produces the same addressing plan — a requirement for reproducible
//! experiments.

use crate::prefix::{Prefix4, Prefix6};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Sequentially allocates equal-sized IPv4 subnets from a parent prefix.
#[derive(Debug, Clone)]
pub struct SubnetAllocator4 {
    parent: Prefix4,
    subnet_len: u8,
    next: u64,
}

impl SubnetAllocator4 {
    /// Allocate `subnet_len`-long subnets out of `parent`.
    ///
    /// # Panics
    /// Panics if `subnet_len` is shorter than the parent's length.
    pub fn new(parent: Prefix4, subnet_len: u8) -> SubnetAllocator4 {
        assert!(
            subnet_len >= parent.len() && subnet_len <= 32,
            "subnet length {subnet_len} outside [{}, 32]",
            parent.len()
        );
        SubnetAllocator4 {
            parent,
            subnet_len,
            next: 0,
        }
    }

    /// Number of subnets already handed out.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Total capacity of the pool.
    pub fn capacity(&self) -> u64 {
        1u64 << (self.subnet_len - self.parent.len())
    }

    /// Allocate the next subnet, or `None` when the pool is exhausted.
    pub fn next_subnet(&mut self) -> Option<Prefix4> {
        let p = self.parent.subnet(self.subnet_len, self.next)?;
        self.next += 1;
        Some(p)
    }
}

/// Sequentially allocates equal-sized IPv6 subnets from a parent prefix.
#[derive(Debug, Clone)]
pub struct SubnetAllocator6 {
    parent: Prefix6,
    subnet_len: u8,
    next: u128,
}

impl SubnetAllocator6 {
    /// Allocate `subnet_len`-long subnets out of `parent`.
    ///
    /// # Panics
    /// Panics if `subnet_len` is shorter than the parent's length.
    pub fn new(parent: Prefix6, subnet_len: u8) -> SubnetAllocator6 {
        assert!(
            subnet_len >= parent.len() && subnet_len <= 128,
            "subnet length {subnet_len} outside [{}, 128]",
            parent.len()
        );
        SubnetAllocator6 {
            parent,
            subnet_len,
            next: 0,
        }
    }

    /// Number of subnets already handed out.
    pub fn allocated(&self) -> u128 {
        self.next
    }

    /// Allocate the next subnet, or `None` when the pool is exhausted.
    pub fn next_subnet(&mut self) -> Option<Prefix6> {
        let p = self.parent.subnet(self.subnet_len, self.next)?;
        self.next += 1;
        Some(p)
    }
}

/// Sequentially allocates host addresses inside one IPv4 prefix, skipping the
/// network address (index 0) like a sane DHCP server would.
#[derive(Debug, Clone)]
pub struct HostAllocator4 {
    prefix: Prefix4,
    next: u64,
}

impl HostAllocator4 {
    /// Allocate hosts inside `prefix`, starting at `.1`.
    pub fn new(prefix: Prefix4) -> HostAllocator4 {
        HostAllocator4 { prefix, next: 1 }
    }

    /// The prefix being allocated from.
    pub fn prefix(&self) -> Prefix4 {
        self.prefix
    }

    /// Allocate the next host address, or `None` when exhausted.
    pub fn next_host(&mut self) -> Option<Ipv4Addr> {
        let h = self.prefix.host(self.next)?;
        self.next += 1;
        Some(h)
    }
}

/// Sequentially allocates host addresses inside one IPv6 prefix, starting at
/// `::1`.
#[derive(Debug, Clone)]
pub struct HostAllocator6 {
    prefix: Prefix6,
    next: u128,
}

impl HostAllocator6 {
    /// Allocate hosts inside `prefix`, starting at `::1`.
    pub fn new(prefix: Prefix6) -> HostAllocator6 {
        HostAllocator6 { prefix, next: 1 }
    }

    /// The prefix being allocated from.
    pub fn prefix(&self) -> Prefix6 {
        self.prefix
    }

    /// Allocate the next host address, or `None` when exhausted.
    pub fn next_host(&mut self) -> Option<Ipv6Addr> {
        let h = self.prefix.host(self.next)?;
        self.next += 1;
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subnet_allocation_v4() {
        let mut a = SubnetAllocator4::new("10.0.0.0/8".parse().unwrap(), 16);
        assert_eq!(a.capacity(), 256);
        assert_eq!(a.next_subnet().unwrap().to_string(), "10.0.0.0/16");
        assert_eq!(a.next_subnet().unwrap().to_string(), "10.1.0.0/16");
        assert_eq!(a.allocated(), 2);
    }

    #[test]
    fn subnet_exhaustion_v4() {
        let mut a = SubnetAllocator4::new("192.0.2.0/24".parse().unwrap(), 26);
        let all: Vec<_> = std::iter::from_fn(|| a.next_subnet()).collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3].to_string(), "192.0.2.192/26");
        assert!(a.next_subnet().is_none());
    }

    #[test]
    fn subnet_allocation_v6() {
        let mut a = SubnetAllocator6::new("2001:db8::/32".parse().unwrap(), 48);
        assert_eq!(a.next_subnet().unwrap().to_string(), "2001:db8::/48");
        assert_eq!(a.next_subnet().unwrap().to_string(), "2001:db8:1::/48");
    }

    #[test]
    fn host_allocation_v4_skips_network_address() {
        let mut h = HostAllocator4::new("198.51.100.0/30".parse().unwrap());
        assert_eq!(h.next_host().unwrap(), Ipv4Addr::new(198, 51, 100, 1));
        assert_eq!(h.next_host().unwrap(), Ipv4Addr::new(198, 51, 100, 2));
        assert_eq!(h.next_host().unwrap(), Ipv4Addr::new(198, 51, 100, 3));
        assert!(h.next_host().is_none());
    }

    #[test]
    fn host_allocation_v6() {
        let mut h = HostAllocator6::new("2001:db8:1::/64".parse().unwrap());
        assert_eq!(
            h.next_host().unwrap(),
            "2001:db8:1::1".parse::<Ipv6Addr>().unwrap()
        );
        assert_eq!(
            h.next_host().unwrap(),
            "2001:db8:1::2".parse::<Ipv6Addr>().unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "subnet length")]
    fn rejects_widening() {
        SubnetAllocator4::new("10.0.0.0/16".parse().unwrap(), 8);
    }
}
