//! # iputil — IP address and prefix utilities
//!
//! Foundation crate for the `ipv6view` measurement suite. It provides the
//! pieces every other layer builds on:
//!
//! * [`prefix`] — CIDR prefixes for IPv4 and IPv6 with canonicalization,
//!   parsing, containment tests and supernet/subnet arithmetic.
//! * [`trie`] — path-compressed radix tries with longest-prefix-match
//!   lookup, the *mutable authority* behind the BGP RIB (`bgpsim`).
//! * [`multibit`] — the *frozen* LPM engine: a flattened Poptrie/DXR-style
//!   multibit table compiled from a trie, for read-mostly lookup at
//!   attribution scale.
//! * [`hash`] — a self-contained SipHash-2-4 implementation (keyed PRF) used
//!   by the anonymizer; validated against the reference vectors from the
//!   SipHash paper.
//! * [`anon`] — prefix-preserving address anonymization in the style of
//!   CryptoPAN (Xu et al., ICNP 2002), as used by the paper's appendix A to
//!   scramble the low 8 bits of IPv4 addresses and the low /64 of IPv6
//!   addresses before flow logs leave the residence router.
//! * [`alloc`] — deterministic subnet and host allocators used by the world
//!   generator to hand out address space to ASes, clouds and residences.
//! * [`sym`] — interned symbol tables ([`sym::SymbolTable`]) and dense
//!   symbol-indexed maps ([`sym::SymVec`]): `u32` symbols replace repeated
//!   hashing of sparse `AsId`s and full name strings on the per-flow
//!   attribution hot paths.
//!
//! Everything here is deterministic: no ambient randomness, no system time.
//!
//! # LPM architecture: radix authority, frozen multibit engine
//!
//! The suite performs longest-prefix-match at two very different rhythms —
//! RIB churn (announce/withdraw from the faults plane) and attribution
//! (hundreds of thousands of lookups against a table that is *not*
//! changing). Two engines split the work:
//!
//! * The **radix trie** ([`Lpm4`]/[`Lpm6`]/[`LpmTrie`]) is the mutable
//!   authority: every insert/remove happens here, merge-on-remove keeps its
//!   shape canonical, and it always answers lookups correctly on its own.
//! * The **frozen multibit engine** ([`Frozen4`]/[`Frozen6`]/[`FrozenLpm`])
//!   is compiled from the trie by [`Lpm4::freeze`]/[`Lpm6::freeze`]: a
//!   DIR-24-8-style direct root table over the first 16 bits plus stride-6
//!   popcount-compressed node arrays with leaf-pushed results (see
//!   [`multibit`] for the layout). It answers byte-identically to the trie
//!   at freeze time — the differential property tests assert it — but with
//!   cache-dense arrays instead of pointer chasing.
//!
//! *When compile happens:* `bgpsim::Rib::compile` freezes both families
//! after the world generator finishes announcing (worldgen does this
//! automatically); holders of long-lived static tables (e.g. the residence
//! router's LAN sets) freeze once at construction.
//!
//! *Churn and fallback:* mutating a compiled `Rib` drops the stale frozen
//! engines and falls back to the trie — correctness never depends on a
//! recompile. Callers that churn then query in bulk (the faults plane's RIB
//! churn scenarios) may recompile once the table settles.
//!
//! *Memo interaction:* both engines' `longest_match_many` keep a
//! direct-mapped duplicate memo in front; a deterministic probe-window
//! check makes it bypass itself on duplicate-poor batches, where the frozen
//! engine's interleaved prefetching walker takes over
//! ([`multibit::MEMO_BYPASS`]).

// `deny` rather than `forbid` solely for the one `#[allow(unsafe_code)]`
// software-prefetch intrinsic in `multibit` (a cache hint, no memory
// access); everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod anon;
pub mod hash;
pub mod multibit;
pub mod prefix;
pub mod sym;
pub mod trie;

pub use alloc::{HostAllocator4, HostAllocator6, SubnetAllocator4, SubnetAllocator6};
pub use anon::{Anonymizer, AnonymizerConfig};
pub use hash::SipHasher24;
pub use multibit::{Frozen4, Frozen6, FrozenLpm};
pub use prefix::{ParsePrefixError, Prefix, Prefix4, Prefix6};
pub use sym::{Sym, SymVec, SymbolTable};
pub use trie::{Bits, Lpm4, Lpm6, LpmTrie};

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Address family of an IP address, prefix or flow.
///
/// The whole point of the paper is to measure *how much* of the traffic is
/// [`Family::V6`] rather than whether V6 is possible at all, so this enum
/// shows up in practically every record type of the suite.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Family {
    /// IPv4.
    V4,
    /// IPv6.
    V6,
}

impl Family {
    /// The family of `addr`.
    pub fn of(addr: IpAddr) -> Family {
        match addr {
            IpAddr::V4(_) => Family::V4,
            IpAddr::V6(_) => Family::V6,
        }
    }

    /// Short lowercase label (`"v4"` / `"v6"`), used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Family::V4 => "v4",
            Family::V6 => "v6",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Family::V4 => "IPv4",
            Family::V6 => "IPv6",
        })
    }
}

/// Convert an [`Ipv4Addr`] to its 32-bit big-endian integer value.
pub fn v4_to_u32(addr: Ipv4Addr) -> u32 {
    u32::from(addr)
}

/// Convert a 32-bit big-endian integer to an [`Ipv4Addr`].
pub fn u32_to_v4(bits: u32) -> Ipv4Addr {
    Ipv4Addr::from(bits)
}

/// Convert an [`Ipv6Addr`] to its 128-bit big-endian integer value.
pub fn v6_to_u128(addr: Ipv6Addr) -> u128 {
    u128::from(addr)
}

/// Convert a 128-bit big-endian integer to an [`Ipv6Addr`].
pub fn u128_to_v6(bits: u128) -> Ipv6Addr {
    Ipv6Addr::from(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_of_addresses() {
        assert_eq!(Family::of(IpAddr::V4(Ipv4Addr::LOCALHOST)), Family::V4);
        assert_eq!(Family::of(IpAddr::V6(Ipv6Addr::LOCALHOST)), Family::V6);
    }

    #[test]
    fn family_labels_and_display() {
        assert_eq!(Family::V4.label(), "v4");
        assert_eq!(Family::V6.label(), "v6");
        assert_eq!(Family::V4.to_string(), "IPv4");
        assert_eq!(Family::V6.to_string(), "IPv6");
    }

    #[test]
    fn family_orders_v4_before_v6() {
        assert!(Family::V4 < Family::V6);
    }

    #[test]
    fn int_roundtrips() {
        let a = Ipv4Addr::new(192, 0, 2, 55);
        assert_eq!(u32_to_v4(v4_to_u32(a)), a);
        let b: Ipv6Addr = "2001:db8::42".parse().unwrap();
        assert_eq!(u128_to_v6(v6_to_u128(b)), b);
    }
}
