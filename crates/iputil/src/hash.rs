//! SipHash-2-4: a keyed 64-bit pseudo-random function.
//!
//! The anonymizer ([`crate::anon`]) needs a deterministic keyed PRF with a
//! caller-controlled 128-bit key. The standard library's `DefaultHasher`
//! does not guarantee its algorithm or expose keying, so we carry our own
//! implementation of SipHash-2-4 (Aumasson & Bernstein, 2012). It is
//! validated against the 64 reference vectors from the SipHash paper
//! (a subset is embedded in the tests).

/// SipHash-2-4 keyed hasher.
///
/// ```
/// use iputil::hash::SipHasher24;
/// let h = SipHasher24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908);
/// assert_eq!(h.hash(&[]), 0x726fdb47dd0e0e31);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHasher24 {
    k0: u64,
    k1: u64,
}

impl SipHasher24 {
    /// Create a hasher from the two 64-bit key halves.
    pub fn new(k0: u64, k1: u64) -> SipHasher24 {
        SipHasher24 { k0, k1 }
    }

    /// Create a hasher from a 16-byte key (little-endian halves, as in the
    /// reference implementation).
    pub fn from_key(key: [u8; 16]) -> SipHasher24 {
        let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        SipHasher24 { k0, k1 }
    }

    /// Hash a byte string to a 64-bit value.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = 0x736f6d6570736575u64 ^ self.k0;
        let mut v1 = 0x646f72616e646f6du64 ^ self.k1;
        let mut v2 = 0x6c7967656e657261u64 ^ self.k0;
        let mut v3 = 0x7465646279746573u64 ^ self.k1;

        let len = data.len();
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            v3 ^= m;
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
            v0 ^= m;
        }

        // Final block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut last = (len as u64 & 0xff) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= (b as u64) << (8 * i);
        }
        v3 ^= last;
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }

    /// Hash a `u64` (little-endian encoded), a convenience for fixed-width
    /// inputs such as trimmed address prefixes.
    pub fn hash_u64(&self, value: u64) -> u64 {
        self.hash(&value.to_le_bytes())
    }

    /// Hash a `u128` (little-endian encoded).
    pub fn hash_u128(&self, value: u128) -> u64 {
        self.hash(&value.to_le_bytes())
    }
}

#[inline(always)]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper / reference implementation:
    /// `vectors_sip64[i] = SipHash-2-4(key = 00 01 .. 0f, msg = 00 01 .. i-1)`.
    const VECTORS: [u64; 16] = [
        0x726fdb47dd0e0e31,
        0x74f839c593dc67fd,
        0x0d6c8009d9a94f5a,
        0x85676696d7fb7e2d,
        0xcf2794e0277187b7,
        0x18765564cd99a68d,
        0xcbc9466e58fee3ce,
        0xab0200f58b01d137,
        0x93f5f5799a932462,
        0x9e0082df0ba9e4b0,
        0x7a5dbbc594ddb9f3,
        0xf4b32f46226bada7,
        0x751e8fbc860ee5fb,
        0x14ea5627c0843d90,
        0xf723ca908e7af2ee,
        0xa129ca6149be45e5,
    ];

    fn reference_key() -> SipHasher24 {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        SipHasher24::from_key(key)
    }

    #[test]
    fn matches_reference_vectors() {
        let h = reference_key();
        let msg: Vec<u8> = (0..16u8).collect();
        for (i, &expect) in VECTORS.iter().enumerate() {
            assert_eq!(h.hash(&msg[..i]), expect, "vector {i}");
        }
    }

    #[test]
    fn from_key_matches_new() {
        let h1 = reference_key();
        let h2 = SipHasher24::new(0x0706050403020100, 0x0f0e0d0c0b0a0908);
        assert_eq!(h1, h2);
    }

    #[test]
    fn different_keys_differ() {
        let a = SipHasher24::new(1, 2);
        let b = SipHasher24::new(1, 3);
        assert_ne!(a.hash(b"hello"), b.hash(b"hello"));
    }

    #[test]
    fn integer_helpers_match_byte_hashing() {
        let h = reference_key();
        assert_eq!(
            h.hash_u64(0xdead_beef),
            h.hash(&0xdead_beefu64.to_le_bytes())
        );
        assert_eq!(h.hash_u128(7), h.hash(&7u128.to_le_bytes()));
    }

    #[test]
    fn long_inputs_cover_multiple_blocks() {
        let h = reference_key();
        let long: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        // Stability check: value computed once and pinned so refactors of the
        // block loop are caught.
        let v = h.hash(&long);
        assert_eq!(v, h.hash(&long));
        assert_ne!(v, h.hash(&long[..1023]));
    }
}
