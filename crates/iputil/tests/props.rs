//! Property-based tests for iputil: LPM-vs-linear-scan equivalence,
//! anonymizer prefix preservation, prefix algebra invariants.

use iputil::anon::{Anonymizer, AnonymizerConfig};
use iputil::prefix::{Prefix4, Prefix6};
use iputil::trie::{Lpm4, Lpm6, LpmTrie};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_prefix4() -> impl Strategy<Value = Prefix4> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix4::new(Ipv4Addr::from(bits), len))
}

fn arb_prefix6() -> impl Strategy<Value = Prefix6> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Prefix6::new(Ipv6Addr::from(bits), len))
}

proptest! {
    /// The trie's longest match must agree with a brute-force linear scan.
    #[test]
    fn lpm_matches_linear_scan(
        prefixes in proptest::collection::vec(arb_prefix4(), 1..40),
        addrs in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut trie: Lpm4<usize> = Lpm4::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
        }
        for addr_bits in addrs {
            let addr = Ipv4Addr::from(addr_bits);
            let expect = prefixes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.contains(addr))
                .max_by_key(|(i, p)| (p.len(), *i)); // later insert wins ties (same prefix replaced)
            let got = trie.longest_match(addr);
            match (expect, got) {
                (None, None) => {}
                (Some((_, p)), Some((gp, _))) => {
                    prop_assert_eq!(p.len(), gp.len(), "match length differs for {}", addr);
                    // The matched prefix must actually contain the address.
                    prop_assert!(gp.contains(addr));
                }
                (e, g) => prop_assert!(false, "mismatch for {}: {:?} vs {:?}", addr, e, g),
            }
        }
    }

    /// Inserting then removing every prefix leaves the trie empty for queries.
    #[test]
    fn trie_remove_all(prefixes in proptest::collection::vec(arb_prefix4(), 1..30)) {
        let mut trie: Lpm4<u8> = Lpm4::new();
        for p in &prefixes {
            trie.insert(*p, 0);
        }
        for p in &prefixes {
            trie.remove(*p);
        }
        prop_assert_eq!(trie.len(), 0);
        for p in &prefixes {
            prop_assert!(trie.longest_match(p.network()).is_none());
        }
    }

    /// Anonymization preserves the length of the longest shared prefix of any
    /// two IPv4 addresses, bit for bit.
    #[test]
    fn anon_preserves_prefix_v4(a in any::<u32>(), b in any::<u32>(), key in any::<[u8; 16]>()) {
        let anon = Anonymizer::new(key, AnonymizerConfig::full());
        let (a, b) = (Ipv4Addr::from(a), Ipv4Addr::from(b));
        let (a2, b2) = (anon.anon_v4(a), anon.anon_v4(b));
        let before = (u32::from(a) ^ u32::from(b)).leading_zeros();
        let after = (u32::from(a2) ^ u32::from(b2)).leading_zeros();
        prop_assert_eq!(before, after);
    }

    /// Same property for IPv6 with the paper configuration: the kept /64 is
    /// identical and the scrambled half still preserves shared prefixes.
    #[test]
    fn anon_preserves_prefix_v6_paper(a in any::<u128>(), b in any::<u128>(), key in any::<[u8; 16]>()) {
        let anon = Anonymizer::new(key, AnonymizerConfig::paper());
        let (a, b) = (Ipv6Addr::from(a), Ipv6Addr::from(b));
        let (a2, b2) = (anon.anon_v6(a), anon.anon_v6(b));
        prop_assert_eq!(u128::from(a2) >> 64, u128::from(a) >> 64);
        prop_assert_eq!(u128::from(b2) >> 64, u128::from(b) >> 64);
        let before = (u128::from(a) ^ u128::from(b)).leading_zeros();
        let after = (u128::from(a2) ^ u128::from(b2)).leading_zeros();
        prop_assert_eq!(before, after);
    }

    /// Prefix textual round-trip.
    #[test]
    fn prefix4_display_parse_roundtrip(p in arb_prefix4()) {
        let s = p.to_string();
        let q: Prefix4 = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    /// Prefix textual round-trip (IPv6).
    #[test]
    fn prefix6_display_parse_roundtrip(p in arb_prefix6()) {
        let s = p.to_string();
        let q: Prefix6 = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    /// `covers` is consistent with `contains` on the subnet's network address
    /// and is a partial order (reflexive, antisymmetric on distinct lengths).
    #[test]
    fn covers_consistency(a in arb_prefix4(), b in arb_prefix4()) {
        prop_assert!(a.covers(a));
        if a.covers(b) {
            prop_assert!(a.contains(b.network()));
            prop_assert!(a.len() <= b.len());
        }
        if a.covers(b) && b.covers(a) {
            prop_assert_eq!(a, b);
        }
    }

    /// Subnetting then asking for the host keeps addresses inside the parent.
    #[test]
    fn subnets_stay_inside_parent(
        bits in any::<u32>(),
        plen in 0u8..=24,
        extra in 0u8..=8,
        idx in any::<u64>(),
        host in any::<u64>(),
    ) {
        let parent = Prefix4::new(Ipv4Addr::from(bits), plen);
        let sublen = plen + extra;
        let idx = idx % (1u64 << extra);
        let sub = parent.subnet(sublen, idx).unwrap();
        prop_assert!(parent.covers(sub));
        let host = host % sub.size();
        let h = sub.host(host).unwrap();
        prop_assert!(sub.contains(h));
        prop_assert!(parent.contains(h));
    }

    /// The generic trie agrees with the wrapper on u128 keys.
    #[test]
    fn trie_u128_exact(prefixes in proptest::collection::vec(arb_prefix6(), 1..20)) {
        let mut t: LpmTrie<u128, usize> = LpmTrie::new();
        for (i, p) in prefixes.iter().enumerate() {
            t.insert(p.bits(), p.len(), i);
        }
        for p in &prefixes {
            prop_assert!(t.get(p.bits(), p.len()).is_some());
        }
    }

    /// IPv6: the radix trie's longest match must agree with a brute-force
    /// linear scan (observational equivalence against a naive reference).
    /// Addresses are biased toward stored prefixes so hits are exercised,
    /// not just misses.
    #[test]
    fn lpm6_matches_linear_scan(
        prefixes in proptest::collection::vec(arb_prefix6(), 1..40),
        addrs in proptest::collection::vec((any::<u128>(), 0usize..40, any::<bool>()), 1..40),
    ) {
        let mut trie: Lpm6<usize> = Lpm6::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
        }
        for (bits, pick, inside) in addrs {
            // Half the probes land inside a stored prefix (low bits random).
            let addr = if inside {
                let p = prefixes[pick % prefixes.len()];
                let host_bits = if p.len() == 128 { 0 } else { bits & !iputil::prefix::mask128(p.len()) };
                Ipv6Addr::from(p.bits() | host_bits)
            } else {
                Ipv6Addr::from(bits)
            };
            let expect = prefixes
                .iter()
                .filter(|p| p.contains(addr))
                .map(|p| p.len())
                .max();
            let got = trie.longest_match(addr);
            match (expect, got) {
                (None, None) => {}
                (Some(len), Some((gp, _))) => {
                    prop_assert_eq!(len, gp.len(), "match length differs for {}", addr);
                    prop_assert!(gp.contains(addr));
                }
                (e, g) => prop_assert!(false, "mismatch for {}: {:?} vs {:?}", addr, e, g),
            }
        }
    }

    /// Batched lookup must be observationally identical to one-at-a-time
    /// lookup, for both families, including duplicates and misses.
    #[test]
    fn batched_agrees_with_single(
        prefixes4 in proptest::collection::vec(arb_prefix4(), 1..30),
        prefixes6 in proptest::collection::vec(arb_prefix6(), 1..30),
        addrs in proptest::collection::vec((any::<u32>(), any::<u128>()), 1..50),
    ) {
        let mut t4: Lpm4<usize> = Lpm4::new();
        for (i, p) in prefixes4.iter().enumerate() {
            t4.insert(*p, i);
        }
        let mut t6: Lpm6<usize> = Lpm6::new();
        for (i, p) in prefixes6.iter().enumerate() {
            t6.insert(*p, i);
        }
        // Duplicate every address so the dedup path is exercised.
        let mut a4: Vec<Ipv4Addr> = addrs.iter().map(|&(b, _)| Ipv4Addr::from(b)).collect();
        a4.extend(addrs.iter().map(|&(b, _)| Ipv4Addr::from(b)));
        let mut a6: Vec<Ipv6Addr> = addrs.iter().map(|&(_, b)| Ipv6Addr::from(b)).collect();
        a6.extend(addrs.iter().map(|&(_, b)| Ipv6Addr::from(b)));

        let batch4 = t4.longest_match_many(&a4);
        for (i, &a) in a4.iter().enumerate() {
            prop_assert_eq!(
                batch4[i].map(|(p, v)| (p, *v)),
                t4.longest_match(a).map(|(p, v)| (p, *v))
            );
        }
        let batch6 = t6.longest_match_many(&a6);
        for (i, &a) in a6.iter().enumerate() {
            prop_assert_eq!(
                batch6[i].map(|(p, v)| (p, *v)),
                t6.longest_match(a).map(|(p, v)| (p, *v))
            );
        }
    }

    /// Inserting then removing every IPv6 prefix leaves the trie empty for
    /// queries (the v4 twin of `trie_remove_all` above).
    #[test]
    fn trie6_remove_all(prefixes in proptest::collection::vec(arb_prefix6(), 1..30)) {
        let mut trie: Lpm6<u8> = Lpm6::new();
        for p in &prefixes {
            trie.insert(*p, 0);
        }
        for p in &prefixes {
            trie.remove(*p);
        }
        prop_assert_eq!(trie.len(), 0);
        for p in &prefixes {
            prop_assert!(trie.longest_match(p.network()).is_none());
        }
    }

    /// Interleaved inserts and removes leave the trie *structurally*
    /// equivalent to a fresh build of the surviving prefix set: same stored
    /// prefixes, same live node count (merge-on-remove reclaims every
    /// split node churn created), and identical longest-match behaviour.
    #[test]
    fn lpm4_interleaved_ops_structurally_equal_fresh_build(
        ops in proptest::collection::vec(
            ((any::<u32>(), 16u8..=32), any::<bool>(), any::<u32>()),
            1..80,
        ),
        probes in proptest::collection::vec(any::<u32>(), 1..30),
    ) {
        // 16 fixed anchors keep both tries out of small-table mode so the
        // comparison exercises the radix paths.
        let anchors: Vec<Prefix4> = (0..16u32)
            .map(|i| Prefix4::new(Ipv4Addr::from(0xb000_0000 + (i << 20)), 16))
            .collect();
        let mut churned: Lpm4<u32> = Lpm4::new();
        let mut reference: std::collections::HashMap<Prefix4, u32> =
            std::collections::HashMap::new();
        for a in &anchors {
            churned.insert(*a, 0);
            reference.insert(*a, 0);
        }
        for ((bits, len), is_insert, val) in ops {
            let p = Prefix4::new(Ipv4Addr::from(bits), len);
            if is_insert {
                prop_assert_eq!(churned.insert(p, val), reference.insert(p, val));
            } else {
                prop_assert_eq!(churned.remove(p), reference.remove(&p));
            }
        }
        // Fresh build of the surviving set (insertion order is irrelevant
        // to the canonical radix structure).
        let mut fresh: Lpm4<u32> = Lpm4::new();
        for (p, v) in &reference {
            fresh.insert(*p, *v);
        }
        prop_assert_eq!(churned.len(), fresh.len());
        prop_assert_eq!(
            churned.node_count(),
            fresh.node_count(),
            "churned trie must not retain stale interior nodes"
        );
        for bits in probes {
            let addr = Ipv4Addr::from(bits);
            prop_assert_eq!(
                churned.longest_match(addr).map(|(p, v)| (p, *v)),
                fresh.longest_match(addr).map(|(p, v)| (p, *v))
            );
        }
    }

    /// IPv6 twin of the structural-equivalence property.
    #[test]
    fn lpm6_interleaved_ops_structurally_equal_fresh_build(
        ops in proptest::collection::vec(
            ((any::<u128>(), 16u8..=64), any::<bool>(), any::<u32>()),
            1..60,
        ),
        probes in proptest::collection::vec(any::<u128>(), 1..20),
    ) {
        let anchors: Vec<Prefix6> = (0..16u128)
            .map(|i| Prefix6::new(Ipv6Addr::from(0xfd00u128 << 112 | i << 96), 32))
            .collect();
        let mut churned: Lpm6<u32> = Lpm6::new();
        let mut reference: std::collections::HashMap<Prefix6, u32> =
            std::collections::HashMap::new();
        for a in &anchors {
            churned.insert(*a, 0);
            reference.insert(*a, 0);
        }
        for ((bits, len), is_insert, val) in ops {
            let p = Prefix6::new(Ipv6Addr::from(bits), len);
            if is_insert {
                prop_assert_eq!(churned.insert(p, val), reference.insert(p, val));
            } else {
                prop_assert_eq!(churned.remove(p), reference.remove(&p));
            }
        }
        let mut fresh: Lpm6<u32> = Lpm6::new();
        for (p, v) in &reference {
            fresh.insert(*p, *v);
        }
        prop_assert_eq!(churned.len(), fresh.len());
        prop_assert_eq!(churned.node_count(), fresh.node_count());
        for bits in probes {
            let addr = Ipv6Addr::from(bits);
            prop_assert_eq!(
                churned.longest_match(addr).map(|(p, v)| (p, *v)),
                fresh.longest_match(addr).map(|(p, v)| (p, *v))
            );
        }
    }

    /// The frozen multibit engine must answer byte-identically to the trie
    /// it was compiled from — scalar and batched, hits and misses — across
    /// interleaved insert/remove/compile sequences. Short prefixes and the
    /// default route are force-included so the leaf-pushing and
    /// root-spanning paths are always exercised.
    #[test]
    fn frozen4_differential_vs_trie(
        ops in proptest::collection::vec(
            ((any::<u32>(), 0u8..=32), any::<bool>(), any::<u32>()),
            1..60,
        ),
        default_route in any::<bool>(),
        short in (any::<u32>(), 1u8..=8),
        probes in proptest::collection::vec(any::<u32>(), 1..40),
        freeze_at in 0usize..60,
    ) {
        let mut trie: Lpm4<u32> = Lpm4::new();
        let mut reference: std::collections::HashMap<Prefix4, u32> =
            std::collections::HashMap::new();
        if default_route {
            trie.insert(Prefix4::new(Ipv4Addr::from(0), 0), 424242);
            reference.insert(Prefix4::new(Ipv4Addr::from(0), 0), 424242);
        }
        trie.insert(Prefix4::new(Ipv4Addr::from(short.0), short.1), 434343);
        reference.insert(Prefix4::new(Ipv4Addr::from(short.0), short.1), 434343);
        // Churn up to a mid-sequence point, compile, keep churning, compile
        // again: the second frozen table must reflect every op, the first
        // must still answer for its own snapshot.
        let split = freeze_at.min(ops.len());
        for &((bits, len), is_insert, val) in &ops[..split] {
            let p = Prefix4::new(Ipv4Addr::from(bits), len);
            if is_insert { trie.insert(p, val); reference.insert(p, val); }
            else { trie.remove(p); reference.remove(&p); }
        }
        let mid_frozen = trie.freeze();
        let mid_trie = trie.clone();
        for &((bits, len), is_insert, val) in &ops[split..] {
            let p = Prefix4::new(Ipv4Addr::from(bits), len);
            if is_insert { trie.insert(p, val); reference.insert(p, val); }
            else { trie.remove(p); reference.remove(&p); }
        }
        let frozen = trie.freeze();
        prop_assert_eq!(frozen.len(), trie.len());
        // Fresh insertion of the surviving set compiles to the same answers
        // (the compile is a pure function of trie contents, not history).
        let mut fresh: Lpm4<u32> = Lpm4::new();
        for (p, v) in &reference {
            fresh.insert(*p, *v);
        }
        let fresh_frozen = fresh.freeze();
        let addrs: Vec<Ipv4Addr> = probes.iter().map(|&b| Ipv4Addr::from(b)).collect();
        let batch = frozen.longest_match_many(&addrs);
        let values = frozen.values_many(&addrs);
        let mid_batch = mid_frozen.longest_match_many(&addrs);
        for (i, &a) in addrs.iter().enumerate() {
            let want = trie.longest_match(a).map(|(p, v)| (p, *v));
            prop_assert_eq!(frozen.longest_match(a).map(|(p, v)| (p, *v)), want, "scalar {}", a);
            prop_assert_eq!(batch[i].map(|(p, v)| (p, *v)), want, "batched {}", a);
            prop_assert_eq!(values[i].copied(), want.map(|(_, v)| v), "values {}", a);
            prop_assert_eq!(
                fresh_frozen.longest_match(a).map(|(p, v)| (p, *v)),
                want,
                "fresh-build {}", a
            );
            prop_assert_eq!(
                mid_batch[i].map(|(p, v)| (p, *v)),
                mid_trie.longest_match(a).map(|(p, v)| (p, *v)),
                "mid-churn snapshot {}", a
            );
        }
    }

    /// IPv6 twin of the frozen differential property — the 128-bit key
    /// exercises multi-level stride chains, path-compressed skips, and the
    /// uniform-node encoding far more deeply than v4.
    #[test]
    fn frozen6_differential_vs_trie(
        ops in proptest::collection::vec(
            ((any::<u128>(), 0u8..=128), any::<bool>(), any::<u32>()),
            1..50,
        ),
        default_route in any::<bool>(),
        short in (any::<u128>(), 1u8..=12),
        probes in proptest::collection::vec((any::<u128>(), 0usize..50, any::<bool>()), 1..30),
        freeze_at in 0usize..50,
    ) {
        let mut trie: Lpm6<u32> = Lpm6::new();
        if default_route {
            trie.insert(Prefix6::new(Ipv6Addr::from(0), 0), 424242);
        }
        trie.insert(Prefix6::new(Ipv6Addr::from(short.0), short.1), 434343);
        let mut inserted: Vec<Prefix6> = Vec::new();
        let split = freeze_at.min(ops.len());
        for &((bits, len), is_insert, val) in &ops[..split] {
            let p = Prefix6::new(Ipv6Addr::from(bits), len);
            if is_insert { trie.insert(p, val); inserted.push(p); } else { trie.remove(p); }
        }
        let mid_frozen = trie.freeze();
        let mid_trie = trie.clone();
        for &((bits, len), is_insert, val) in &ops[split..] {
            let p = Prefix6::new(Ipv6Addr::from(bits), len);
            if is_insert { trie.insert(p, val); inserted.push(p); } else { trie.remove(p); }
        }
        let frozen = trie.freeze();
        prop_assert_eq!(frozen.len(), trie.len());
        // Bias probes toward stored prefixes so deep hits are exercised,
        // not just root-table misses.
        let addrs: Vec<Ipv6Addr> = probes
            .iter()
            .map(|&(bits, pick, inside)| {
                if inside && !inserted.is_empty() {
                    let p = inserted[pick % inserted.len()];
                    let host = if p.len() == 128 { 0 } else { bits & !iputil::prefix::mask128(p.len()) };
                    Ipv6Addr::from(p.bits() | host)
                } else {
                    Ipv6Addr::from(bits)
                }
            })
            .collect();
        let batch = frozen.longest_match_many(&addrs);
        let values = frozen.values_many(&addrs);
        let mid_batch = mid_frozen.longest_match_many(&addrs);
        for (i, &a) in addrs.iter().enumerate() {
            let want = trie.longest_match(a).map(|(p, v)| (p, *v));
            prop_assert_eq!(frozen.longest_match(a).map(|(p, v)| (p, *v)), want, "scalar {}", a);
            prop_assert_eq!(batch[i].map(|(p, v)| (p, *v)), want, "batched {}", a);
            prop_assert_eq!(values[i].copied(), want.map(|(_, v)| v), "values {}", a);
            prop_assert_eq!(
                mid_batch[i].map(|(p, v)| (p, *v)),
                mid_trie.longest_match(a).map(|(p, v)| (p, *v)),
                "mid-churn snapshot {}", a
            );
        }
    }

    /// Interleaved inserts and removes keep the trie equivalent to a naive
    /// map-based reference, LPM included (catches stale short_best /
    /// dangling-split bugs that insert-only tests cannot).
    #[test]
    fn lpm4_interleaved_ops_match_reference(
        ops in proptest::collection::vec((arb_prefix4(), any::<bool>(), any::<u32>()), 1..60),
        probes in proptest::collection::vec(any::<u32>(), 1..30),
    ) {
        let mut trie: Lpm4<u32> = Lpm4::new();
        let mut reference: std::collections::HashMap<Prefix4, u32> =
            std::collections::HashMap::new();
        for (p, is_insert, val) in ops {
            if is_insert {
                prop_assert_eq!(trie.insert(p, val), reference.insert(p, val), "insert {}", p);
            } else {
                prop_assert_eq!(trie.remove(p), reference.remove(&p), "remove {}", p);
            }
            prop_assert_eq!(trie.len(), reference.len());
        }
        for bits in &probes {
            let addr = Ipv4Addr::from(*bits);
            let expect = reference
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, v)| (*p, *v));
            let got = trie.longest_match(addr).map(|(p, v)| {
                // Reconstruct the canonical stored prefix for comparison.
                (Prefix4::new(addr, p.len()), *v)
            });
            prop_assert_eq!(got, expect, "probe {}", addr);
        }
    }
}
